"""In-order CPU cost model: the Fig. 7 baseline (our gem5 substitute).

Table 1 pins the baseline: an in-order X86 core at 1 GHz with 16/64/256 KiB
L1I/L1D/L2 at 2/2/20-cycle latencies.  The paper only needs end-to-end
latency and energy for the three kernels, so we model the execution as an
operation/memory-event stream: every 64-bit ALU op costs one issue cycle,
and loads/stores hit a two-level cache whose hit rates we derive from the
kernel's streaming behaviour (bulk-bitwise scans stream their inputs, so
most accesses miss to DRAM at line granularity).

Energy uses published per-event figures for a 22 nm-class core: pJ-scale
ALU/cache events and nJ-scale DRAM line transfers.  The workload functions
count events for the *same* work one compiled CIM program performs in one
run (``data_width`` lanes), which makes the EDP comparison apples to
apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError

#: cache-line size of the modeled memory hierarchy (bytes)
LINE_BYTES = 64
#: per-event energies (picojoules), 22FDX-class core
ALU_PJ = 5.0
L1_PJ = 2.0
L2_PJ = 20.0
DRAM_PJ_PER_LINE = 10_000.0
#: static core+cache power charged per cycle (pJ/cycle at 1 GHz = mW);
#: ~0.5 W for core, caches and the DRAM interface
STATIC_PJ_PER_CYCLE = 500.0


@dataclass(frozen=True)
class CpuSpec:
    """The Table 1 system-level configuration."""

    clock_ghz: float = 1.0
    l1_latency_cycles: int = 2
    l2_latency_cycles: int = 20
    dram_latency_ns: float = 80.0
    #: fraction of loads served by each level; bulk-bitwise kernels stream
    #: data far larger than the caches, so a sizable share misses to DRAM
    l1_hit_rate: float = 0.70
    l2_hit_rate: float = 0.15  # of all loads

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise SimulationError("clock must be positive")
        if not 0 <= self.l1_hit_rate + self.l2_hit_rate <= 1:
            raise SimulationError("hit rates must sum to at most 1")


@dataclass(frozen=True)
class CpuEvents:
    """Operation/memory event counts of one kernel execution."""

    alu_ops: int
    loads: int
    stores: int

    def __add__(self, other: "CpuEvents") -> "CpuEvents":
        return CpuEvents(self.alu_ops + other.alu_ops,
                         self.loads + other.loads,
                         self.stores + other.stores)

    def scaled(self, factor: int) -> "CpuEvents":
        """Event counts for ``factor`` repetitions of the work."""
        return CpuEvents(self.alu_ops * factor, self.loads * factor,
                         self.stores * factor)


@dataclass(frozen=True)
class CpuMetrics:
    """Latency/energy/EDP of a kernel on the baseline CPU."""

    latency_ns: float
    energy_pj: float

    @property
    def latency_us(self) -> float:
        """CPU latency in microseconds."""
        return self.latency_ns * 1e-3

    @property
    def energy_uj(self) -> float:
        """CPU energy in microjoules."""
        return self.energy_pj * 1e-6

    @property
    def edp(self) -> float:
        """Joule-seconds, same unit as :class:`TraceMetrics.edp`."""
        return (self.energy_pj * 1e-12) * (self.latency_ns * 1e-9)


def run_model(events: CpuEvents, spec: CpuSpec = CpuSpec()) -> CpuMetrics:
    """Price an event stream on the in-order core."""
    dram_rate = max(0.0, 1.0 - spec.l1_hit_rate - spec.l2_hit_rate)
    accesses = events.loads + events.stores
    l1 = accesses * spec.l1_hit_rate
    l2 = accesses * spec.l2_hit_rate
    dram = accesses * dram_rate
    cycle_ns = 1.0 / spec.clock_ghz
    cycles = (events.alu_ops
              + l1 * spec.l1_latency_cycles
              + l2 * spec.l2_latency_cycles)
    latency_ns = cycles * cycle_ns + dram * spec.dram_latency_ns
    total_cycles = latency_ns / cycle_ns
    # DRAM transfers amortize over whole cache lines of streamed data
    dram_lines = dram * 8 / LINE_BYTES  # 64-bit words per access
    energy = (events.alu_ops * ALU_PJ
              + accesses * L1_PJ
              + (l2 + dram) * L2_PJ
              + dram_lines * DRAM_PJ_PER_LINE
              + total_cycles * STATIC_PJ_PER_CYCLE)
    return CpuMetrics(latency_ns=latency_ns, energy_pj=energy)


# ----------------------------------------------------------------------
# per-workload event models (64-bit scalar implementations)
# ----------------------------------------------------------------------
def _words(lanes: int) -> int:
    """64-bit words needed to cover ``lanes`` one-bit lanes."""
    return max(1, math.ceil(lanes / 64))


def dag_events(dag, lanes: int) -> CpuEvents:
    """Generic event model for an arbitrary bulk-bitwise DAG.

    The compile-and-serve offload path (:mod:`repro.serve`) prices *any*
    request — not just the three named kernels — on the CPU baseline: a
    scalar implementation evaluates each DAG op over the 64-bit words
    covering ``lanes`` lanes (load every operand word, one bitwise ALU op
    per word, store the result word), and streams each named output back
    out.  This is deliberately the same work the reference evaluator
    (:func:`repro.dfg.evaluate`) performs, so CIM-vs-CPU pricing stays
    apples to apples per request.
    """
    words = _words(lanes)
    alu = loads = stores = 0
    for node in dag.op_nodes():
        loads += len(node.operands) * words
        alu += words
        stores += words
    loads += len(dag.outputs) * words
    stores += len(dag.outputs) * words
    return CpuEvents(alu_ops=alu, loads=loads, stores=stores)


def bitweaving_events(lanes: int, bits: int = 8, segments: int = 1) -> CpuEvents:
    """BitWeaving-V BETWEEN scan over ``lanes`` records per segment.

    Per slice word: load x, C1, C2 slices and update four accumulators
    (roughly 12 bitwise ALU ops, Fig. 3a), then store the verdict word.
    """
    words = _words(lanes)
    per_segment = CpuEvents(alu_ops=12 * bits * words + words,
                            loads=3 * bits * words,
                            stores=words)
    return per_segment.scaled(segments)


def sobel_events(lanes: int, bits: int = 8, tile: int = 1) -> CpuEvents:
    """Scalar Sobel over ``lanes`` output pixels (per tile position).

    Per pixel: 9 loads (3×3 window), ~14 adds/subs/shifts for the two
    gradients, 2 absolute values, 1 add, 1 store.
    """
    per_pixel = CpuEvents(alu_ops=18, loads=9, stores=1)
    return per_pixel.scaled(lanes * tile * tile)


def aes_events(lanes: int, rounds: int = 10) -> CpuEvents:
    """Table-based AES-128 on ``lanes`` blocks.

    Per round per block: 16 S-box lookups, 16 round-key loads, MixColumns
    as ~60 table/XOR ops, plus state shuffling; a common software figure is
    ~20 cycles/byte for unaccelerated table AES, which this approximates.
    """
    per_block_round = CpuEvents(alu_ops=80, loads=36, stores=4)
    final = CpuEvents(alu_ops=40, loads=32, stores=16)
    return per_block_round.scaled(rounds).scaled(lanes) + final.scaled(lanes)
