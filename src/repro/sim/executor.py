"""Functional execution of CIM instruction traces.

This is the correctness half of our gem5 substitute: it implements the exact
semantics of the ISA on a lane-parallel array model, so a compiled program
can be cross-checked against the reference evaluation of its source DAG.

Lane values are Python integers used as bitmasks (lane ``i`` = bit ``i``),
which keeps the machine exact for any lane count.  The *simulated* lane
count may be much smaller than the target's modeled data width: timing and
energy are lane-agnostic (lanes run in lockstep), so simulating 64 lanes
verifies the same program the cost model prices at 4096 lanes.

Decision failures can be injected: each CIM column-op flips sensed lanes
with the technology's ``P_DF``, letting tests observe the reliability model
end to end.
"""

from __future__ import annotations

import random

from repro.arch.isa import (
    Instruction,
    NotInst,
    ReadInst,
    ShiftInst,
    TransferInst,
    WriteInst,
)
from repro.arch.layout import CellAddr, Layout
from repro.arch.target import TargetSpec
from repro.devices.failure import decision_failure_probability
from repro.dfg.ops import OpType, apply_op
from repro.errors import SimulationError


class ArrayMachine:
    """Functional model of the CIM arrays plus their row buffers."""

    def __init__(self, target: TargetSpec, lanes: int = 64,
                 fault_rng: random.Random | None = None) -> None:
        if lanes < 1:
            raise SimulationError(f"lane count must be positive, got {lanes}")
        self.target = target
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        self.fault_rng = fault_rng
        self.injected_faults = 0
        self._cells: dict[tuple[int, int, int], int] = {}  # (array,row,col) -> lanes
        self._rowbuf: dict[int, dict[int, int]] = {}  # array -> col -> lanes
        #: number of writes each (array, row, col) cell received during the
        #: run — the wear input of :func:`repro.sim.endurance.wear_from_counts`
        self.write_counts: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # cell access
    # ------------------------------------------------------------------
    def _check_addr(self, array: int, row: int, col: int) -> None:
        t = self.target
        if not (0 <= array < t.num_arrays and 0 <= row < t.rows and 0 <= col < t.cols):
            raise SimulationError(
                f"address (array={array}, row={row}, col={col}) outside "
                f"target {t.num_arrays}x{t.rows}x{t.cols}")

    def poke(self, addr: CellAddr, value: int) -> None:
        """Directly set a cell (used to preload resident input data)."""
        self._check_addr(addr.array, addr.row, addr.col)
        self._cells[(addr.array, addr.row, addr.col)] = value & self.mask

    def peek(self, addr: CellAddr) -> int:
        """Directly observe a cell."""
        self._check_addr(addr.array, addr.row, addr.col)
        try:
            return self._cells[(addr.array, addr.row, addr.col)]
        except KeyError:
            raise SimulationError(
                f"cell (array={addr.array}, row={addr.row}, col={addr.col}) "
                "was never written") from None

    def rowbuf(self, array: int) -> dict[int, int]:
        """Snapshot of an array's row-buffer contents (col -> lanes)."""
        return dict(self._rowbuf.get(array, {}))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, instructions: list[Instruction]) -> None:
        """Execute a whole instruction trace in order."""
        for inst in instructions:
            self.execute(inst)

    def execute(self, inst: Instruction) -> None:
        """Execute one instruction."""
        if isinstance(inst, ReadInst):
            self._read(inst)
        elif isinstance(inst, WriteInst):
            self._write(inst)
        elif isinstance(inst, ShiftInst):
            self._shift(inst)
        elif isinstance(inst, NotInst):
            self._not(inst)
        elif isinstance(inst, TransferInst):
            self._transfer(inst)
        else:
            raise SimulationError(f"unknown instruction {inst!r}")

    def _read(self, inst: ReadInst) -> None:
        buf = self._rowbuf.setdefault(inst.array, {})
        for idx, col in enumerate(inst.cols):
            values = []
            for row in inst.rows:
                self._check_addr(inst.array, row, col)
                try:
                    values.append(self._cells[(inst.array, row, col)])
                except KeyError:
                    raise SimulationError(
                        f"read of uninitialized cell (array={inst.array}, "
                        f"row={row}, col={col})") from None
            if inst.ops is None:
                result = values[0]
                op_for_fault: OpType | None = None
            else:
                result = apply_op(inst.ops[idx], values, self.mask)
                op_for_fault = inst.ops[idx]
            if self.fault_rng is not None:
                result = self._inject(result, op_for_fault, len(inst.rows))
            buf[col] = result

    def _inject(self, value: int, op: OpType | None, k: int) -> int:
        """Flip sensed lanes with the per-lane decision-failure probability."""
        tech = self.target.technology
        if op is None:
            p = decision_failure_probability(tech, OpType.NOT, 1)
        else:
            p = decision_failure_probability(tech, op, k)
        if p <= 0.0:
            return value
        flips = 0
        for lane in range(self.lanes):
            if self.fault_rng.random() < p:
                value ^= 1 << lane
                flips += 1
        self.injected_faults += flips
        return value

    def _write(self, inst: WriteInst) -> None:
        buf = self._rowbuf.get(inst.array, {})
        for col in inst.cols:
            self._check_addr(inst.array, inst.row, col)
            if col not in buf:
                raise SimulationError(
                    f"write from empty row-buffer column {col} "
                    f"(array {inst.array})")
            key = (inst.array, inst.row, col)
            self._cells[key] = buf[col]
            self.write_counts[key] = self.write_counts.get(key, 0) + 1

    def _shift(self, inst: ShiftInst) -> None:
        buf = self._rowbuf.get(inst.array, {})
        shifted = {}
        for col, value in buf.items():
            new_col = col + inst.amount
            if 0 <= new_col < self.target.cols:
                shifted[new_col] = value
        self._rowbuf[inst.array] = shifted

    def _not(self, inst: NotInst) -> None:
        buf = self._rowbuf.get(inst.array, {})
        for col in inst.cols:
            if col not in buf:
                raise SimulationError(
                    f"NOT of empty row-buffer column {col} (array {inst.array})")
            buf[col] = ~buf[col] & self.mask

    def _transfer(self, inst: TransferInst) -> None:
        src = self._rowbuf.get(inst.array, {})
        dst = self._rowbuf.setdefault(inst.dst_array, {})
        for col in inst.cols:
            if col not in src:
                raise SimulationError(
                    f"xfer from empty row-buffer column {col} "
                    f"(array {inst.array})")
            dst[col] = src[col]


def preload_sources(machine: ArrayMachine, layout: Layout, dag,
                    inputs: dict[str, int]) -> None:
    """Write resident input data and constants into their primary cells.

    In a CIM system the application data already lives in the arrays; the
    mapper chooses *where*.  Only the first (primary) copy is preloaded —
    every further copy is materialized by the program's own gather moves.
    """
    from repro.dfg.graph import OperandKind  # local import to avoid cycles

    names = {o.name for o in dag.inputs()}
    missing = names - set(inputs)
    if missing:
        raise SimulationError(f"missing input values: {sorted(missing)}")
    for operand in dag.operand_nodes():
        if operand.kind is OperandKind.INPUT:
            value = inputs[operand.name]
        elif operand.kind is OperandKind.CONST:
            value = machine.mask if operand.const_value else 0
        else:
            continue
        if layout.is_placed(operand.node_id):
            machine.poke(layout.primary(operand.node_id), value & machine.mask)


def extract_outputs(machine: ArrayMachine, layout: Layout, dag) -> dict[str, int]:
    """Read the program outputs back from their primary cells."""
    results = {}
    for name, oid in dag.outputs.items():
        results[name] = machine.peek(layout.primary(oid))
    return results
