"""Functional execution of CIM instruction traces.

This is the correctness half of our gem5 substitute: it implements the exact
semantics of the ISA on a lane-parallel array model, so a compiled program
can be cross-checked against the reference evaluation of its source DAG.

Lane values are Python integers used as bitmasks (lane ``i`` = bit ``i``),
which keeps the machine exact for any lane count.  The *simulated* lane
count may be much smaller than the target's modeled data width: timing and
energy are lane-agnostic (lanes run in lockstep), so simulating 64 lanes
verifies the same program the cost model prices at 4096 lanes.

Decision failures can be injected: each CIM column-op flips sensed lanes
with the technology's ``P_DF``, letting tests observe the reliability model
end to end.  A :class:`SenseObserver` hook (see
:mod:`repro.reliability.recovery`) can intercept every sensed column value
to re-sense, vote, or degrade — the detect-and-recover half of the fault
model.

The machine also tracks which row-buffer columns hold *live* data — the
columns deposited by the most recent ``read`` into (or ``xfer`` to) each
array.  Columns surviving from before that are stale garbage a correct
program never consumes; shifting them off the array edge is harmless and
happens all the time in real schedules.  Shifting a *live* column off the
edge, however, silently destroys data the program just sensed, so in
``strict_shift`` mode (the default for compiled-program execution) it
raises :class:`SimulationError` instead.

Hard faults compose with all of the above.  A :class:`FaultMap` gives
cells a permanent stuck-at-0/1 or dead state: every sense of a faulty cell
returns its forced value (deterministically — unlike the Gaussian decision
failures), and writes to it silently bounce.  With ``verify_writes`` the
machine implements **verify-after-write**: every programmed cell is read
back, transient write failures (``Technology.write_failure_probability``)
are retried up to ``write_retries`` times, and a cell that keeps failing
is treated as newly dead — recorded in ``discovered_faults`` and remapped
to a healthy spare cell of the same column (``spare_pool``), transparently
redirecting every later access.  When retries and spares are both
exhausted the machine raises :class:`repro.errors.HardFaultError` naming
the cell, which the compiler's ``remap`` ladder rung turns into a
recompilation around the discovered faults.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol

from repro.arch.isa import (
    Instruction,
    NotInst,
    ReadInst,
    ShiftInst,
    TransferInst,
    WriteInst,
    instruction_arrays,
)
from repro.arch.layout import CellAddr, Layout
from repro.arch.target import TargetSpec
from repro.devices.faultmap import FaultMap
from repro.dfg.ops import OpType, apply_op
from repro.errors import HardFaultError, SimulationError
from repro.sim.metrics import MultiArrayMetrics, OverlapTimeline, cached_p_df


class SenseObserver(Protocol):
    """Hook interception point for every sensed CIM column value.

    Recovery policies (:mod:`repro.reliability.recovery`) implement this to
    re-sense, majority-vote, or degrade a read.  ``resense`` redoes the same
    sensing operation with fresh fault draws; ``values`` are the true cell
    contents the sense combined (``op is None`` for plain single-row reads).
    """

    def on_sense(self, machine: "ArrayMachine", op: OpType | None, k: int,
                 values: list[int], result: int, resense) -> int:
        """Return the value to deposit in the row buffer for this column."""
        ...


@dataclass
class MachineState:
    """A restorable snapshot of one :class:`ArrayMachine` (checkpoint)."""

    cells: dict[tuple[int, int, int], int]
    rowbuf: dict[int, dict[int, int]]
    live: dict[int, set[int]]
    write_counts: dict[tuple[int, int, int], int]


class ArrayMachine:
    """Functional model of the CIM arrays plus their row buffers."""

    def __init__(self, target: TargetSpec, lanes: int = 64,
                 fault_rng: random.Random | int | None = None,
                 strict_shift: bool = False,
                 observer: SenseObserver | None = None,
                 fault_map: FaultMap | None = None,
                 verify_writes: bool = False,
                 write_retries: int = 2,
                 spare_pool: list[CellAddr] | None = None) -> None:
        if lanes < 1:
            raise SimulationError(f"lane count must be positive, got {lanes}")
        if write_retries < 0:
            raise SimulationError(
                f"write_retries must be non-negative, got {write_retries}")
        self.target = target
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        # an int is taken as a seed for a private stream: call sites that
        # cross a process boundary (parallel campaigns, bench workers) pass
        # plain seeds instead of sharing one mutable RNG object
        if isinstance(fault_rng, int):
            fault_rng = random.Random(fault_rng)
        self.fault_rng = fault_rng
        self.strict_shift = strict_shift
        #: recovery hook consulted after every sensed column (may be None)
        self.observer = observer
        self.injected_faults = 0
        #: known permanent faults (manufacturing map / wear); forced on sense
        self.fault_map = fault_map
        #: verify-after-write: read every programmed cell back and escalate
        self.verify_writes = verify_writes
        #: re-write attempts before a failing cell is declared dead
        self.write_retries = write_retries
        #: hard faults diagnosed by verify-after-write *during this run*
        self.discovered_faults = FaultMap()
        #: logical -> physical cell redirections installed by remapping
        self.remaps: list[tuple[tuple[int, int, int], tuple[int, int, int]]] = []
        self._remap: dict[tuple[int, int, int], tuple[int, int, int]] = {}
        #: spare rows per (array, col) available for remapping, ordered
        self._spares: dict[tuple[int, int], list[int]] = {}
        for addr in spare_pool or []:
            self._spares.setdefault((addr.array, addr.col), []).append(addr.row)
        for rows in self._spares.values():
            rows.sort()
        # transient write failures are only injected on the verify path:
        # without read-back a flipped write would silently corrupt the
        # functional result, and keeping the unverified path draw-free
        # preserves the RNG stream of existing seeded campaigns exactly
        self._inject_write_failures = (
            verify_writes and self.fault_rng is not None
            and target.technology.write_failure_probability > 0.0)
        self.write_failures_injected = 0
        self.writes_verified = 0
        self.write_retries_used = 0
        self._cells: dict[tuple[int, int, int], int] = {}  # (array,row,col) -> lanes
        self._rowbuf: dict[int, dict[int, int]] = {}  # array -> col -> lanes
        #: per-array set of row-buffer columns holding live (unconsumed) data
        self._live: dict[int, set[int]] = {}
        #: number of writes each (array, row, col) cell received during the
        #: run — the wear input of :func:`repro.sim.endurance.wear_from_counts`
        self.write_counts: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # cell access
    # ------------------------------------------------------------------
    def _check_addr(self, array: int, row: int, col: int) -> None:
        t = self.target
        if not (0 <= array < t.num_arrays and 0 <= row < t.rows and 0 <= col < t.cols):
            raise SimulationError(
                f"address (array={array}, row={row}, col={col}) outside "
                f"target {t.num_arrays}x{t.rows}x{t.cols}")

    def _phys(self, key: tuple[int, int, int]) -> tuple[int, int, int]:
        """Translate a logical cell through the remap table (identity-fast)."""
        if self._remap:
            return self._remap.get(key, key)
        return key

    def _cell_fault(self, key: tuple[int, int, int]):
        """The permanent fault of a *physical* cell, or ``None`` if healthy."""
        if self.fault_map is not None:
            fault = self.fault_map.fault_at(*key)
            if fault is not None:
                return fault
        if self.discovered_faults:
            return self.discovered_faults.fault_at(*key)
        return None

    def _load(self, array: int, row: int, col: int) -> int:
        """Cell contents as the sense amp sees them: remapped, fault-forced."""
        key = self._phys((array, row, col))
        fault = self._cell_fault(key)
        if fault is not None:
            return fault.forced_value(self.mask)
        try:
            return self._cells[key]
        except KeyError:
            raise SimulationError(
                f"read of uninitialized cell (array={array}, row={row}, "
                f"col={col})") from None

    def poke(self, addr: CellAddr, value: int) -> None:
        """Directly set a cell (used to preload resident input data).

        Pokes follow remapping and bounce off faulty cells exactly like
        programmed writes (minus verify): preloading an input onto a stuck
        cell cannot un-stick it.
        """
        self._check_addr(addr.array, addr.row, addr.col)
        key = self._phys((addr.array, addr.row, addr.col))
        if self._cell_fault(key) is None:
            self._cells[key] = value & self.mask

    def peek(self, addr: CellAddr) -> int:
        """Directly observe a cell (remapped and fault-forced like a sense)."""
        self._check_addr(addr.array, addr.row, addr.col)
        key = self._phys((addr.array, addr.row, addr.col))
        fault = self._cell_fault(key)
        if fault is not None:
            return fault.forced_value(self.mask)
        try:
            return self._cells[key]
        except KeyError:
            raise SimulationError(
                f"cell (array={addr.array}, row={addr.row}, col={addr.col}) "
                "was never written") from None

    def rowbuf(self, array: int) -> dict[int, int]:
        """Snapshot of an array's row-buffer contents (col -> lanes)."""
        return dict(self._rowbuf.get(array, {}))

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> MachineState:
        """Copy the full machine state (cells, row buffers, liveness, wear).

        Fault accounting (``injected_faults``, ``discovered_faults``, the
        remap table and the spare pool) is *not* part of the snapshot: those
        model permanent physical facts and controller tables, so a rollback
        replaying a write to a remapped cell lands on its spare instead of
        re-diagnosing the dead cell and burning a second spare.
        """
        return MachineState(
            cells=dict(self._cells),
            rowbuf={a: dict(b) for a, b in self._rowbuf.items()},
            live={a: set(s) for a, s in self._live.items()},
            write_counts=dict(self.write_counts))

    def restore(self, state: MachineState) -> None:
        """Roll the machine back to a :meth:`snapshot`."""
        self._cells = dict(state.cells)
        self._rowbuf = {a: dict(b) for a, b in state.rowbuf.items()}
        self._live = {a: set(s) for a, s in state.live.items()}
        self.write_counts = dict(state.write_counts)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, instructions: list[Instruction]) -> None:
        """Execute a whole instruction trace in order."""
        for inst in instructions:
            self.execute(inst)

    def execute(self, inst: Instruction) -> None:
        """Execute one instruction."""
        if isinstance(inst, ReadInst):
            self._read(inst)
        elif isinstance(inst, WriteInst):
            self._write(inst)
        elif isinstance(inst, ShiftInst):
            self._shift(inst)
        elif isinstance(inst, NotInst):
            self._not(inst)
        elif isinstance(inst, TransferInst):
            self._transfer(inst)
        else:
            raise SimulationError(f"unknown instruction {inst!r}")

    def _read(self, inst: ReadInst) -> None:
        buf = self._rowbuf.setdefault(inst.array, {})
        k = len(inst.rows)
        for idx, col in enumerate(inst.cols):
            values = []
            for row in inst.rows:
                self._check_addr(inst.array, row, col)
                values.append(self._load(inst.array, row, col))
            op = None if inst.ops is None else inst.ops[idx]
            true_value = values[0] if op is None else apply_op(op, values, self.mask)

            def sense(op=op, true_value=true_value):
                """One (possibly faulty) sensing of this column."""
                if self.fault_rng is None:
                    return true_value
                return self._inject(true_value, op, k)

            result = sense()
            if self.observer is not None:
                result = self.observer.on_sense(self, op, k, values, result, sense)
            buf[col] = result
        self._live[inst.array] = set(inst.cols)

    def _inject(self, value: int, op: OpType | None, k: int) -> int:
        """Flip sensed lanes with the per-lane decision-failure probability.

        Flip positions are drawn with geometric gap sampling — the lane index
        jumps ahead by a Geometric(p) stride per flip — which is distribution-
        identical to the per-lane Bernoulli scan but runs in O(expected
        flips + 1) instead of O(lanes), keeping large-lane Monte-Carlo
        campaigns fast.
        """
        tech = self.target.technology
        if op is None:
            p = cached_p_df(tech, OpType.NOT, 1)
        else:
            p = cached_p_df(tech, op, k)
        if p <= 0.0:
            return value
        if p >= 1.0:
            self.injected_faults += self.lanes
            return value ^ self.mask
        log_keep = math.log1p(-p)
        lane = 0
        flips = 0
        while True:
            # u in (0, 1]: the gap to the next flipped lane is Geometric(p)
            u = 1.0 - self.fault_rng.random()
            lane += int(math.log(u) / log_keep)
            if lane >= self.lanes:
                break
            value ^= 1 << lane
            flips += 1
            lane += 1
        self.injected_faults += flips
        return value

    def _write(self, inst: WriteInst) -> None:
        buf = self._rowbuf.get(inst.array, {})
        for col in inst.cols:
            self._check_addr(inst.array, inst.row, col)
            if col not in buf:
                raise SimulationError(
                    f"write from empty row-buffer column {col} "
                    f"(array {inst.array})")
            self._commit(inst.array, inst.row, col, buf[col])

    def _attempt_store(self, key: tuple[int, int, int], value: int) -> None:
        """One write pulse: may transiently corrupt, bounces off faulty cells.

        A transient miss stores the lane-complement of the intended value —
        the worst case for read-back, guaranteeing the verify loop sees
        every injected failure (a partial flip would be caught the same
        way; the complement just makes tests exact).
        """
        if (self._inject_write_failures and self.fault_rng.random()
                < self.target.technology.write_failure_probability):
            value = ~value & self.mask
            self.write_failures_injected += 1
        if self._cell_fault(key) is None:
            self._cells[key] = value
        self.write_counts[key] = self.write_counts.get(key, 0) + 1

    def _readback(self, key: tuple[int, int, int]) -> int:
        """Verify read of a just-written physical cell (fault-forced).

        Modeled as the exact margin read of a program-and-verify loop, so it
        is deterministic — decision failures apply to CIM senses, not to the
        controller's verify circuit.
        """
        fault = self._cell_fault(key)
        if fault is not None:
            return fault.forced_value(self.mask)
        return self._cells.get(key, 0)

    def _next_spare(self, array: int, col: int) -> tuple[int, int, int] | None:
        """Pop the next healthy spare cell in the same array column."""
        rows = self._spares.get((array, col), [])
        while rows:
            key = (array, rows.pop(0), col)
            if self._cell_fault(key) is None:
                return key
        return None

    def _commit(self, array: int, row: int, col: int, value: int) -> None:
        """Program one cell, with verify-after-write escalation when enabled.

        The ladder: write → read back → retry up to ``write_retries`` →
        declare the cell dead (``discovered_faults``) and remap to a spare
        of the same column → raise :class:`HardFaultError` when the spare
        pool is dry.  A stuck cell whose forced value happens to equal the
        written value verifies clean — the data is correct, which is all
        verify-after-write can (or needs to) observe.
        """
        logical = (array, row, col)
        attempts = 0
        total_attempts = 0
        spares_tried = 0
        while True:
            key = self._phys(logical)
            self._attempt_store(key, value)
            attempts += 1
            total_attempts += 1
            if not self.verify_writes:
                return
            self.writes_verified += 1
            if self._readback(key) == value:
                return
            if attempts <= self.write_retries:
                self.write_retries_used += 1
                continue
            # retries exhausted: the cell is bad beyond transient errors
            self.discovered_faults.mark_dead(*key)
            spare = self._next_spare(array, col)
            if spare is None:
                raise HardFaultError(
                    f"write to cell (array={array}, row={row}, col={col}) "
                    f"failed after {total_attempts} attempts and "
                    f"{spares_tried} spare cells; no healthy spare left in "
                    f"column {col} of array {array}",
                    cell=logical, physical_cell=key,
                    attempts=total_attempts, spares_tried=spares_tried)
            self._remap[logical] = spare
            self.remaps.append((logical, spare))
            spares_tried += 1
            attempts = 0

    def _shift(self, inst: ShiftInst) -> None:
        buf = self._rowbuf.get(inst.array, {})
        live = self._live.get(inst.array, set())
        shifted = {}
        shifted_live = set()
        for col, value in buf.items():
            new_col = col + inst.amount
            if 0 <= new_col < self.target.cols:
                shifted[new_col] = value
                if col in live:
                    shifted_live.add(new_col)
            elif self.strict_shift and col in live:
                raise SimulationError(
                    f"shift by {inst.amount} moves live row-buffer column "
                    f"{col} (array {inst.array}) outside [0, "
                    f"{self.target.cols}); the program would silently lose "
                    "sensed data")
        self._rowbuf[inst.array] = shifted
        self._live[inst.array] = shifted_live

    def _not(self, inst: NotInst) -> None:
        buf = self._rowbuf.get(inst.array, {})
        for col in inst.cols:
            if col not in buf:
                raise SimulationError(
                    f"NOT of empty row-buffer column {col} (array {inst.array})")
            buf[col] = ~buf[col] & self.mask

    def _transfer(self, inst: TransferInst) -> None:
        if not 0 <= inst.dst_array < self.target.num_arrays:
            raise SimulationError(
                f"xfer destination array {inst.dst_array} out of range for "
                f"target with {self.target.num_arrays} array(s)")
        src = self._rowbuf.get(inst.array, {})
        dst = self._rowbuf.setdefault(inst.dst_array, {})
        for col in inst.cols:
            if col not in src:
                raise SimulationError(
                    f"xfer from empty row-buffer column {col} "
                    f"(array {inst.array})")
            dst[col] = src[col]
        self._live[inst.dst_array] = set(inst.cols)


class ArraySetMachine:
    """Concurrent execution view over an :class:`ArrayMachine`.

    The wrapped machine stays the functional truth — lane values are exact
    and instructions apply in the compiler's single-stream order — while an
    :class:`repro.sim.metrics.OverlapTimeline` prices the run the way the
    multi-array controller executes it: each array's sub-stream proceeds
    concurrently with the others, and ``xfer`` instructions serialize on
    the single global bus while unrelated arrays keep computing.  After a
    run, :attr:`metrics` reports per-array busy time, bus occupancy and the
    overlap-model critical-path latency (makespan).

    ``barrier()`` models a host synchronization point — the boundary
    between spill-and-partition stages, where values are extracted and
    re-poked — after which no instruction may start early.
    """

    def __init__(self, machine: ArrayMachine) -> None:
        self.machine = machine
        self.timeline = OverlapTimeline(machine.target)

    @property
    def target(self) -> TargetSpec:
        """The wrapped machine's target specification."""
        return self.machine.target

    @property
    def metrics(self) -> MultiArrayMetrics:
        """The concurrency profile accumulated so far."""
        return self.timeline.metrics

    def run(self, instructions: list[Instruction]) -> None:
        """Execute instructions functionally while advancing the timeline."""
        for inst in instructions:
            self.machine.execute(inst)
            self.timeline.step(inst)

    def barrier(self) -> None:
        """Record a host synchronization point in the timeline."""
        self.timeline.barrier()

    @staticmethod
    def split_streams(instructions: list[Instruction],
                      ) -> dict[int, list[Instruction]]:
        """Per-array instruction sub-streams of one merged trace.

        Each instruction appears in the stream of every array it occupies,
        so an ``xfer`` shows up in both its source and destination streams
        — the synchronization points where the sub-streams rendezvous.
        """
        streams: dict[int, list[Instruction]] = {}
        for inst in instructions:
            for array in instruction_arrays(inst):
                streams.setdefault(array, []).append(inst)
        return dict(sorted(streams.items()))


def preload_sources(machine: ArrayMachine, layout: Layout, dag,
                    inputs: dict[str, int],
                    only: set[str] | None = None) -> None:
    """Write resident input data and constants into their primary cells.

    In a CIM system the application data already lives in the arrays; the
    mapper chooses *where*.  Only the first (primary) copy is preloaded —
    every further copy is materialized by the program's own gather moves.

    ``only`` restricts the poked *inputs* to the named subset: a staged
    program's bridge instructions carry some boundary inputs in-array, and
    re-poking those would mask bridge bugs.  Constants are always poked,
    and every declared input must still have a value in ``inputs``.
    """
    from repro.dfg.graph import OperandKind  # local import to avoid cycles

    names = {o.name for o in dag.inputs()}
    missing = names - set(inputs)
    if missing:
        raise SimulationError(f"missing input values: {sorted(missing)}")
    for operand in dag.operand_nodes():
        if operand.kind is OperandKind.INPUT:
            if only is not None and operand.name not in only:
                continue
            value = inputs[operand.name]
        elif operand.kind is OperandKind.CONST:
            value = machine.mask if operand.const_value else 0
        else:
            continue
        if layout.is_placed(operand.node_id):
            machine.poke(layout.primary(operand.node_id), value & machine.mask)


def extract_outputs(machine: ArrayMachine, layout: Layout, dag) -> dict[str, int]:
    """Read the program outputs back from their primary cells.

    A missing output is reported by *name* and primary cell address, not as
    a bare uninitialized-cell error — the difference between "the program
    never computed ``out3``" and an anonymous address.
    """
    results = {}
    for name, oid in dag.outputs.items():
        addr = layout.primary(oid)
        try:
            results[name] = machine.peek(addr)
        except SimulationError:
            raise SimulationError(
                f"output {name!r} (operand {oid}) was never written to its "
                f"primary cell (array={addr.array}, row={addr.row}, "
                f"col={addr.col})") from None
    return results
