"""Timing, energy and reliability accounting over instruction traces.

This is the performance half of our gem5 substitute.  The controller issues
one (possibly column-merged) instruction at a time; each instruction takes a
whole number of controller cycles derived from the array cost model, and its
energy scales with the selected columns and the lockstep lane count (the
target's data width).  Reliability aggregates the per-column decision-failure
probabilities of every CIM read into the paper's ``P_app``.

Recovery policies (:mod:`repro.reliability.recovery`) spend extra reads and
writes that never appear in the compiled trace — re-senses, degraded
MRA = 2 chains, checkpoint replays.  They price that work with the
:func:`read_cost` / :func:`write_cost` / :func:`instruction_cost` helpers
here and surface it through :meth:`TraceMetrics.with_recovery`, so the
overhead lands in the same latency/energy units as the base schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro.arch.isa import (
    Instruction,
    NotInst,
    ReadInst,
    ShiftInst,
    TransferInst,
    WriteInst,
)
from repro.arch.target import TargetSpec
from repro.devices.failure import application_failure_probability
from repro.devices.failure import decision_failure_probability as _p_df
from repro.devices.technology import Technology
from repro.dfg.ops import OpType
from repro.errors import SimulationError


@lru_cache(maxsize=4096)
def cached_p_df(tech: Technology, op: OpType, k: int) -> float:
    """Memoized decision-failure probability (traces repeat few (op, k))."""
    return _p_df(tech, op, k)


# ----------------------------------------------------------------------
# per-operation pricing
# ----------------------------------------------------------------------
def _cycles(ns: float, clock_ghz: float) -> int:
    """Quantize a latency to whole controller cycles (at least one)."""
    return max(1, math.ceil(ns * clock_ghz))


def read_cost(target: TargetSpec, k: int, ncols: int = 1) -> tuple[int, float]:
    """(cycles, pJ) of one read activating ``k`` rows on ``ncols`` columns."""
    cost = target.cost_model
    return (_cycles(cost.read_latency_ns(k), target.clock_ghz),
            cost.read_energy_pj(ncols, k, target.data_width))


def write_cost(target: TargetSpec, ncols: int = 1) -> tuple[int, float]:
    """(cycles, pJ) of one row-buffer write-back on ``ncols`` columns."""
    cost = target.cost_model
    return (_cycles(cost.write_latency_ns(), target.clock_ghz),
            cost.write_energy_pj(ncols, target.data_width))


def rowbuf_not_cost(target: TargetSpec, ncols: int = 1) -> tuple[int, float]:
    """(cycles, pJ) of one row-buffer NOT on ``ncols`` columns."""
    cost = target.cost_model
    return (_cycles(cost.rowbuf_op_latency_ns(), target.clock_ghz),
            cost.rowbuf_op_energy_pj(ncols, target.data_width))


def instruction_cost(inst: Instruction, target: TargetSpec) -> tuple[int, float]:
    """(cycles, pJ) of one instruction — the unit `analyze_trace` sums."""
    cost = target.cost_model
    if isinstance(inst, ReadInst):
        return read_cost(target, len(inst.rows), len(inst.cols))
    if isinstance(inst, WriteInst):
        return write_cost(target, len(inst.cols))
    if isinstance(inst, ShiftInst):
        return (_cycles(cost.shift_latency_ns(), target.clock_ghz),
                cost.shift_energy_pj(target.data_width))
    if isinstance(inst, NotInst):
        return rowbuf_not_cost(target, len(inst.cols))
    if isinstance(inst, TransferInst):
        return (_cycles(cost.transfer_latency_ns(), target.clock_ghz),
                cost.transfer_energy_pj(len(inst.cols), target.data_width))
    raise SimulationError(f"unknown instruction {inst!r}")


@dataclass
class TraceMetrics:
    """Everything the evaluation section reports about one program run."""

    target: TargetSpec
    latency_cycles: int = 0
    energy_pj: float = 0.0
    instruction_count: int = 0
    plain_reads: int = 0
    cim_reads: int = 0
    cim_column_ops: int = 0
    writes: int = 0
    shifts: int = 0
    rowbuf_nots: int = 0
    transfers: int = 0
    #: extra cycles spent by a recovery policy (re-senses, replays, chains)
    recovery_latency_cycles: int = 0
    #: extra energy spent by a recovery policy, in picojoules
    recovery_energy_pj: float = 0.0
    #: per-arity count of CIM column ops (arity -> count)
    mra_histogram: dict[int, int] = field(default_factory=dict)
    #: sum of log(1 - P_DF) over all sensing decisions
    _log_ok: float = 0.0

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def total_latency_cycles(self) -> int:
        """Base schedule cycles plus any recovery overhead."""
        return self.latency_cycles + self.recovery_latency_cycles

    @property
    def total_energy_pj(self) -> float:
        """Base schedule energy plus any recovery overhead."""
        return self.energy_pj + self.recovery_energy_pj

    @property
    def latency_ns(self) -> float:
        """Trace latency in nanoseconds (cycles x clock period)."""
        return self.total_latency_cycles * self.target.cycle_ns

    @property
    def latency_us(self) -> float:
        """Trace latency in microseconds."""
        return self.latency_ns * 1e-3

    @property
    def energy_nj(self) -> float:
        """Trace energy in nanojoules."""
        return self.total_energy_pj * 1e-3

    @property
    def energy_uj(self) -> float:
        """Trace energy in microjoules."""
        return self.total_energy_pj * 1e-6

    @property
    def p_app(self) -> float:
        """Probability of at least one decision failure (Sec. 4.2)."""
        return -math.expm1(self._log_ok)

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds (Fig. 7's metric)."""
        return (self.total_energy_pj * 1e-12) * (self.latency_ns * 1e-9)

    @property
    def movement_instructions(self) -> int:
        """Instructions that only move data (no logic computed)."""
        return self.plain_reads + self.shifts + self.transfers

    def scaled(self, iterations: int) -> "TraceMetrics":
        """Metrics for ``iterations`` back-to-back runs of the same trace."""
        if iterations < 1:
            raise SimulationError(f"iterations must be positive, got {iterations}")
        out = TraceMetrics(
            target=self.target,
            latency_cycles=self.latency_cycles * iterations,
            energy_pj=self.energy_pj * iterations,
            instruction_count=self.instruction_count * iterations,
            plain_reads=self.plain_reads * iterations,
            cim_reads=self.cim_reads * iterations,
            cim_column_ops=self.cim_column_ops * iterations,
            writes=self.writes * iterations,
            shifts=self.shifts * iterations,
            rowbuf_nots=self.rowbuf_nots * iterations,
            transfers=self.transfers * iterations,
            recovery_latency_cycles=self.recovery_latency_cycles * iterations,
            recovery_energy_pj=self.recovery_energy_pj * iterations,
            mra_histogram={k: v * iterations for k, v in self.mra_histogram.items()},
        )
        out._log_ok = self._log_ok * iterations
        return out

    def with_recovery(self, latency_cycles: int,
                      energy_pj: float) -> "TraceMetrics":
        """A copy carrying a recovery policy's priced overhead.

        The overhead adds to the existing recovery fields, so policies can
        layer (e.g. re-sense votes plus a final replay).
        """
        out = TraceMetrics(
            target=self.target,
            latency_cycles=self.latency_cycles,
            energy_pj=self.energy_pj,
            instruction_count=self.instruction_count,
            plain_reads=self.plain_reads,
            cim_reads=self.cim_reads,
            cim_column_ops=self.cim_column_ops,
            writes=self.writes,
            shifts=self.shifts,
            rowbuf_nots=self.rowbuf_nots,
            transfers=self.transfers,
            recovery_latency_cycles=self.recovery_latency_cycles + latency_cycles,
            recovery_energy_pj=self.recovery_energy_pj + energy_pj,
            mra_histogram=dict(self.mra_histogram),
        )
        out._log_ok = self._log_ok
        return out

    def summary(self) -> dict[str, float]:
        """Flat dictionary for table printing."""
        return {
            "latency_us": self.latency_us,
            "energy_nj": self.energy_nj,
            "edp_js": self.edp,
            "p_app": self.p_app,
            "instructions": self.instruction_count,
            "cim_reads": self.cim_reads,
            "writes": self.writes,
            "movement": self.movement_instructions,
            "recovery_latency_us": (self.recovery_latency_cycles
                                    * self.target.cycle_ns * 1e-3),
            "recovery_energy_nj": self.recovery_energy_pj * 1e-3,
        }


def analyze_trace(instructions: list[Instruction], target: TargetSpec,
                  count_plain_read_failures: bool = False) -> TraceMetrics:
    """Price a trace: cycles, picojoules and P_app, instruction by instruction.

    ``count_plain_read_failures`` additionally charges the (tiny) single-row
    sensing failure of plain reads against ``P_app``; the paper only counts
    CIM operations, which is the default here.
    """
    tech = target.technology
    m = TraceMetrics(target=target)
    for inst in instructions:
        m.instruction_count += 1
        cycles, energy = instruction_cost(inst, target)
        m.latency_cycles += cycles
        m.energy_pj += energy
        if isinstance(inst, ReadInst):
            k = len(inst.rows)
            if inst.ops is None:
                m.plain_reads += 1
                if count_plain_read_failures:
                    p = cached_p_df(tech, OpType.NOT, 1)
                    m._log_ok += math.log1p(-p)
            else:
                m.cim_reads += 1
                m.cim_column_ops += len(inst.ops)
                m.mra_histogram[k] = m.mra_histogram.get(k, 0) + len(inst.ops)
                for op in inst.ops:
                    p = cached_p_df(tech, op, k)
                    if p >= 1.0:
                        m._log_ok = -math.inf
                    else:
                        m._log_ok += math.log1p(-p)
        elif isinstance(inst, WriteInst):
            m.writes += 1
        elif isinstance(inst, ShiftInst):
            m.shifts += 1
        elif isinstance(inst, NotInst):
            m.rowbuf_nots += 1
        elif isinstance(inst, TransferInst):
            m.transfers += 1
    return m


def parallel_latency_cycles(instructions: list[Instruction],
                            target: TargetSpec) -> int:
    """Latency with per-array concurrency (a reproduction extension).

    The paper's controller issues one instruction at a time; real multi-bank
    CIM systems let each array execute independently, synchronizing only at
    inter-array transfers.  This model keeps one clock per array: an
    instruction occupies only its array, and a transfer joins the source and
    destination clocks.  The returned cycle count is the makespan — a lower
    bound showing how much inter-array parallelism the schedule exposes.
    """
    cost = target.cost_model
    clock = target.clock_ghz
    busy: dict[int, int] = {}

    def cycles(ns: float) -> int:
        return max(1, math.ceil(ns * clock))

    for inst in instructions:
        if isinstance(inst, TransferInst):
            start = max(busy.get(inst.array, 0), busy.get(inst.dst_array, 0))
            done = start + cycles(cost.transfer_latency_ns())
            busy[inst.array] = done
            busy[inst.dst_array] = done
            continue
        if isinstance(inst, ReadInst):
            ns = cost.read_latency_ns(len(inst.rows))
        elif isinstance(inst, WriteInst):
            ns = cost.write_latency_ns()
        elif isinstance(inst, ShiftInst):
            ns = cost.shift_latency_ns()
        elif isinstance(inst, NotInst):
            ns = cost.rowbuf_op_latency_ns()
        else:
            raise SimulationError(f"unknown instruction {inst!r}")
        busy[inst.array] = busy.get(inst.array, 0) + cycles(ns)
    return max(busy.values(), default=0)


@dataclass
class MultiArrayMetrics:
    """Concurrency profile of a trace under the overlap execution model.

    Where :class:`TraceMetrics` prices the paper's one-instruction-at-a-time
    controller, this models the multi-array co-scheduler's execution: each
    array runs its own instruction sub-stream, synchronizing with the others
    only at ``xfer`` instructions, which serialize on the single global bus.
    ``makespan_cycles`` is the resulting critical-path latency;
    ``serial_cycles`` is what the same trace costs issued serially (equal to
    :attr:`TraceMetrics.latency_cycles`), so ``speedup`` measures how much
    inter-array parallelism the schedule actually exposes.
    """

    target: TargetSpec
    #: overlap-model critical-path latency of the trace
    makespan_cycles: int = 0
    #: latency of the same trace issued one instruction at a time
    serial_cycles: int = 0
    #: cycles the global bus spends carrying ``xfer`` traffic
    bus_busy_cycles: int = 0
    transfers: int = 0
    #: cycles each array spends executing (array id -> cycles); an ``xfer``
    #: occupies both of its arrays for the transfer's duration
    busy_cycles: dict[int, int] = field(default_factory=dict)

    @property
    def arrays_used(self) -> int:
        """Number of arrays that executed at least one instruction."""
        return len(self.busy_cycles)

    @property
    def speedup(self) -> float:
        """Serial latency over makespan (1.0 = no overlap exposed)."""
        if self.makespan_cycles == 0:
            return 1.0
        return self.serial_cycles / self.makespan_cycles

    @property
    def bus_occupancy(self) -> float:
        """Fraction of the makespan the global bus is busy."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.bus_busy_cycles / self.makespan_cycles

    def utilization(self, array: int) -> float:
        """Fraction of the makespan the given array is busy."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.busy_cycles.get(array, 0) / self.makespan_cycles

    def summary(self) -> dict[str, float]:
        """Flat dictionary for table printing."""
        return {
            "makespan_cycles": self.makespan_cycles,
            "serial_cycles": self.serial_cycles,
            "speedup": self.speedup,
            "arrays_used": self.arrays_used,
            "transfers": self.transfers,
            "bus_occupancy": self.bus_occupancy,
        }


class OverlapTimeline:
    """Event clocks of the overlap model: one per array, one for the bus.

    The rules (see DESIGN.md, "Multi-array co-scheduling"):

    * instructions on different arrays proceed concurrently; each array
      executes its own sub-stream in program order,
    * an ``xfer`` starts once its source array, destination array *and* the
      global bus are free, and holds all three until it completes (there is
      one bus, so concurrent transfers serialize),
    * :meth:`barrier` models a host synchronization point (the boundary
      between spill-and-partition stages, where the host extracts and
      re-pokes values): no instruction after the barrier may start before
      everything preceding it finished.

    Feed instructions with :meth:`step`; read the accumulated
    :class:`MultiArrayMetrics` from :attr:`metrics` at any point.
    """

    def __init__(self, target: TargetSpec) -> None:
        self.target = target
        self.metrics = MultiArrayMetrics(target=target)
        self._clock: dict[int, int] = {}
        self._bus_clock = 0
        self._floor = 0

    def _time(self, array: int) -> int:
        return max(self._clock.get(array, 0), self._floor)

    @property
    def now(self) -> int:
        """The latest event time so far (= current makespan)."""
        return self.metrics.makespan_cycles

    def step(self, inst: Instruction) -> None:
        """Advance the clocks by one instruction."""
        cycles, _ = instruction_cost(inst, self.target)
        m = self.metrics
        m.serial_cycles += cycles
        if isinstance(inst, TransferInst):
            start = max(self._time(inst.array), self._time(inst.dst_array),
                        self._bus_clock, self._floor)
            done = start + cycles
            self._clock[inst.array] = done
            self._clock[inst.dst_array] = done
            self._bus_clock = done
            m.bus_busy_cycles += cycles
            m.transfers += 1
            for array in (inst.array, inst.dst_array):
                m.busy_cycles[array] = m.busy_cycles.get(array, 0) + cycles
        else:
            done = self._time(inst.array) + cycles
            self._clock[inst.array] = done
            m.busy_cycles[inst.array] = m.busy_cycles.get(inst.array, 0) + cycles
        if done > m.makespan_cycles:
            m.makespan_cycles = done

    def barrier(self) -> None:
        """Host synchronization point: nothing later starts before it."""
        self._floor = max(self.metrics.makespan_cycles, self._floor)
        self._bus_clock = max(self._bus_clock, self._floor)


def analyze_overlap(instructions: list[Instruction],
                    target: TargetSpec) -> MultiArrayMetrics:
    """Concurrency profile of one uninterrupted trace (no host barriers).

    Staged programs must insert :meth:`OverlapTimeline.barrier` calls at
    stage boundaries instead (see ``CompiledProgram.overlap``).
    """
    timeline = OverlapTimeline(target)
    for inst in instructions:
        timeline.step(inst)
    return timeline.metrics


def operation_failures(instructions: list[Instruction], target: TargetSpec) -> list[float]:
    """Per-CIM-column-op decision-failure probabilities, in trace order."""
    failures = []
    for inst in instructions:
        if isinstance(inst, ReadInst) and inst.ops is not None:
            k = len(inst.rows)
            failures.extend(cached_p_df(target.technology, op, k) for op in inst.ops)
    return failures


def p_app_of(instructions: list[Instruction], target: TargetSpec) -> float:
    """Convenience: ``P_app`` of a trace (Sec. 4.2 formula)."""
    return application_failure_probability(operation_failures(instructions, target))
