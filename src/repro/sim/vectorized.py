"""Vectorized bit-packed execution backend for compiled programs.

The interpreted :class:`repro.sim.executor.ArrayMachine` is the semantic
reference: it walks one instruction at a time over per-cell Python-int
lane masks.  That is exact but slow — every campaign trial and every
served request re-interprets the same trace.  This module separates the
two concerns the way a bytecode VM does (schedule construction vs a fast
execution mapper): a :class:`CompiledProgram`'s instruction stream is
*lowered once* into a flat SSA op-table, and the table is executed with a
handful of batched numpy operations over ``values × batch × lane-words``
``uint64`` matrices.

Lowering symbolically replays the exact interpreted execution — preload,
every ISA instruction (``read``/``write``/``shift``/``not``/``xfer``),
staged boundary handling, output extraction — tracking cells, row
buffers and liveness per array.  Every static error the interpreter
would raise (uninitialized reads, empty row-buffer columns, strict-shift
violations, address bounds) is raised during lowering with the identical
message.  Stuck-at cells from the program's :class:`FaultMap` become
forced constants, so hard-fault forcing costs nothing at run time.

The resulting table is *lane-agnostic* and cached per program instance:
the same lowering serves any lane count and any batch size.  Two
execution plans are derived from it on demand:

* the **deterministic plan** (no fault injection) aliases away plain
  single-row copies entirely and executes only the real column ops —
  bit-identical to the interpreted machine with ``fault_rng=None``;
* the **injecting plan** keeps every sense (plain reads included, at
  ``P_DF(NOT, 1)``, exactly like the interpreter) as a flip point.
  Per-trial flips are drawn from counter-based Philox streams keyed by
  ``(seed, trial)``, so batched campaign shards are bit-identical no
  matter how the trial range is partitioned.  The *stream* differs from
  the interpreter's geometric-gap sampler, but the per-lane flip
  distribution is the same Bernoulli(``P_DF``).

Verify-after-write is a second lowering variant: reads-after-write
return the written value through the dataflow (correct whether the cell
verified clean or was remapped to a spare), and a runtime write pass
replays the interpreter's escalation ladder — retry, declare dead,
remap to a same-column spare, :class:`HardFaultError` when the pool is
dry — with bit-identical counters on deterministic runs.

:func:`execute_many` streams thousands of independent input sets
through one lowered program in memory-bounded chunks — the batch half
of the compile-once/execute-many serving story.
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass, field

import numpy as np

from repro.devices.faultmap import CellFault, FaultMap
from repro.dfg.ops import OpType
from repro.errors import HardFaultError, SherlockError, SimulationError
from repro.sim.metrics import cached_p_df

__all__ = [
    "ENGINES",
    "VectorMachine",
    "VectorProgram",
    "campaign_trials",
    "execute",
    "execute_many",
    "mask_words",
    "pack_values",
    "resolve_engine",
    "unpack_values",
    "validate_engine",
    "vector_program",
]

#: the execution backends a caller may select by name ("auto" resolves)
ENGINES = ("interpreted", "vectorized")

_WORD_MASK = 0xFFFFFFFFFFFFFFFF

# SSA def kinds of the lowered value table
_K_INPUT, _K_CONST, _K_SENSE, _K_NOT = range(4)


def validate_engine(engine: str, allow_auto: bool = True) -> str:
    """Check an engine name, returning it; raise with the valid list.

    ``allow_auto`` additionally accepts ``"auto"`` (resolved later by
    :func:`resolve_engine`).  Raises :class:`SherlockError` naming the
    valid engines — the CLI turns this into an argparse exit-2 error.
    """
    valid = (("auto",) + ENGINES) if allow_auto else ENGINES
    if engine not in valid:
        raise SherlockError(
            f"unknown engine {engine!r} (valid engines: {', '.join(valid)})")
    return engine


def resolve_engine(engine: str, *, observer=None, fault_rng=None,
                   verify_writes: bool = False) -> str:
    """Resolve ``"auto"`` to a concrete backend for one execution.

    ``auto`` picks the vectorized backend only when nothing requires the
    interpreted machine: a sense observer (recovery policies hook the
    interpreter), a fault RNG (existing seeded campaigns rely on the
    interpreter's exact draw stream), or verify-after-write (kept on the
    reference path unless explicitly requested).  An explicit
    ``"vectorized"`` forces the vector path for everything it supports.
    """
    validate_engine(engine)
    if engine != "auto":
        return engine
    if observer is not None or fault_rng is not None or verify_writes:
        return "interpreted"
    return "vectorized"


# ----------------------------------------------------------------------
# bit packing
# ----------------------------------------------------------------------
def _word_count(lanes: int) -> int:
    return (lanes + 63) // 64


def mask_words(lanes: int) -> np.ndarray:
    """The all-lanes-set mask as a ``(W,)`` uint64 word vector."""
    if lanes < 1:
        raise SimulationError(f"lane count must be positive, got {lanes}")
    words = np.full(_word_count(lanes), _WORD_MASK, dtype=np.uint64)
    rem = lanes % 64
    if rem:
        words[-1] = np.uint64((1 << rem) - 1)
    return words


def pack_values(values, lanes: int) -> np.ndarray:
    """Pack lane-bitmask integers into a ``(B, W)`` uint64 word matrix."""
    mask = (1 << lanes) - 1
    width = _word_count(lanes)
    if width == 1:
        return np.fromiter((v & mask for v in values), dtype=np.uint64
                           ).reshape(-1, 1)
    rows = []
    for value in values:
        value &= mask
        rows.append([(value >> (64 * w)) & _WORD_MASK for w in range(width)])
    return np.array(rows, dtype=np.uint64).reshape(-1, width)


def unpack_values(words: np.ndarray, lanes: int) -> list[int]:
    """Unpack a ``(B, W)`` uint64 word matrix back to Python lane masks."""
    if words.shape[1] == 1:
        return [int(v) for v in words[:, 0]]
    out = []
    for row in words:
        value = 0
        for w in range(words.shape[1] - 1, -1, -1):
            value = (value << 64) | int(row[w])
        out.append(value)
    return out


def _pack_lane_bools(bools: np.ndarray, lanes: int) -> np.ndarray:
    """Pack a ``(..., lanes)`` boolean array into ``(..., W)`` uint64 words."""
    width = _word_count(lanes)
    if sys.byteorder == "little":
        # packbits to bytes, zero-pad to a word boundary, reinterpret
        packed = np.packbits(bools, axis=-1, bitorder="little")
        pad = width * 8 - packed.shape[-1]
        if pad:
            packed = np.concatenate(
                [packed,
                 np.zeros(bools.shape[:-1] + (pad,), dtype=np.uint8)],
                axis=-1)
        return np.ascontiguousarray(packed).view(np.uint64)
    out = np.zeros(bools.shape[:-1] + (width,), dtype=np.uint64)
    for w in range(width):
        lo = 64 * w
        hi = min(lanes, lo + 64)
        chunk = bools[..., lo:hi].astype(np.uint64)
        weights = np.left_shift(np.uint64(1),
                                np.arange(hi - lo, dtype=np.uint64))
        out[..., w] = (chunk * weights).sum(axis=-1)
    return out


# ----------------------------------------------------------------------
# symbolic lowering
# ----------------------------------------------------------------------
@dataclass
class _WriteEntry:
    """One programmed cell, in program order (verify-mode escalation unit)."""

    logical: tuple[int, int, int]
    vid: int


class _Lowerer:
    """Symbolically replays one compiled program into an SSA value table.

    Mirrors :class:`repro.sim.executor.ArrayMachine` exactly: cells, row
    buffers and live-column tracking per array, fault forcing, strict
    shifts — except that cell and row-buffer contents are value *ids*
    instead of lane masks.  Static errors reproduce the interpreter's
    messages verbatim.
    """

    def __init__(self, target, fault_map: FaultMap | None,
                 verify: bool, has_spares: bool = False) -> None:
        self.target = target
        self.fault_map = fault_map
        self.verify = verify
        self.has_spares = has_spares
        self.kinds: list[int] = []
        self.ops: list[OpType | None] = []
        self.ks: list[int] = []
        self.srcs: list[tuple[int, ...]] = []
        self.input_ids: dict[str, int] = {}
        self.const_ids: dict[bool, int] = {}
        self.cells: dict[tuple[int, int, int], int] = {}
        self.rowbuf: dict[int, dict[int, int]] = {}
        self.live: dict[int, set[int]] = {}
        #: programmed cells in order (the verify write pass replays these)
        self.writes: list[_WriteEntry] = []
        self.written: set[tuple[int, int, int]] = set()
        #: per-preload sets of global input names that must be provided
        self.input_checks: list[frozenset[str]] = []
        #: staged passthrough outputs: (output name, input name)
        self.passthrough_checks: list[tuple[str, str]] = []
        self.outputs: dict[str, int] = {}

    # -- value table ---------------------------------------------------
    def _new(self, kind: int, op: OpType | None, k: int,
             srcs: tuple[int, ...]) -> int:
        self.kinds.append(kind)
        self.ops.append(op)
        self.ks.append(k)
        self.srcs.append(srcs)
        return len(self.kinds) - 1

    def input_vid(self, name: str) -> int:
        vid = self.input_ids.get(name)
        if vid is None:
            vid = self._new(_K_INPUT, None, 0, ())
            self.input_ids[name] = vid
        return vid

    def const_vid(self, ones: bool) -> int:
        vid = self.const_ids.get(ones)
        if vid is None:
            vid = self._new(_K_CONST, None, 0, ())
            self.const_ids[ones] = vid
        return vid

    # -- cell model ----------------------------------------------------
    def _check_addr(self, array: int, row: int, col: int) -> None:
        t = self.target
        if not (0 <= array < t.num_arrays and 0 <= row < t.rows
                and 0 <= col < t.cols):
            raise SimulationError(
                f"address (array={array}, row={row}, col={col}) outside "
                f"target {t.num_arrays}x{t.rows}x{t.cols}")

    def _fault(self, key: tuple[int, int, int]) -> CellFault | None:
        if self.fault_map is not None:
            return self.fault_map.fault_at(*key)
        return None

    def _load(self, key: tuple[int, int, int], message: str) -> int:
        fault = self._fault(key)
        if self.verify and key in self.cells:
            # a verified write committed this value — either the cell
            # checked clean or it was remapped to a spare holding it
            return self.cells[key]
        if fault is not None:
            return self.const_vid(fault is CellFault.STUCK1)
        vid = self.cells.get(key)
        if vid is None:
            raise SimulationError(message)
        return vid

    def poke(self, addr, vid: int) -> None:
        self._check_addr(addr.array, addr.row, addr.col)
        key = (addr.array, addr.row, addr.col)
        fault = self._fault(key)
        if fault is None:
            self.cells[key] = vid
        elif self.verify:
            if key in self.written and self.has_spares:
                # a runtime remap may have redirected the verified write
                # to a healthy spare, in which case this poke lands on
                # the spare and sticks — the static lowering cannot know
                raise SimulationError(
                    "vectorized verify-after-write cannot lower a poke to "
                    f"faulty cell (array={key[0]}, row={key[1]}, "
                    f"col={key[2]}) after a verified write to it; use the "
                    "interpreted engine")
            # the poke bounces: later reads sense the forced value.  With
            # no spare pool a prior verified write to this faulty cell
            # raises HardFaultError at runtime before the poke executes,
            # so the bounce lowering is never observed in that case.
            self.cells[key] = self.const_vid(fault is CellFault.STUCK1)
        # plain mode: the poke bounces and _load's fault check covers reads

    def store(self, array: int, row: int, col: int, vid: int) -> None:
        key = (array, row, col)
        if self.verify:
            self.cells[key] = vid
            self.written.add(key)
            self.writes.append(_WriteEntry(key, vid))
        else:
            self.writes.append(_WriteEntry(key, vid))
            if self._fault(key) is None:
                self.cells[key] = vid

    # -- instructions --------------------------------------------------
    def run(self, instructions) -> None:
        from repro.arch.isa import (
            NotInst,
            ReadInst,
            ShiftInst,
            TransferInst,
            WriteInst,
        )

        for inst in instructions:
            if isinstance(inst, ReadInst):
                self._read(inst)
            elif isinstance(inst, WriteInst):
                self._write(inst)
            elif isinstance(inst, ShiftInst):
                self._shift(inst)
            elif isinstance(inst, NotInst):
                self._not(inst)
            elif isinstance(inst, TransferInst):
                self._transfer(inst)
            else:
                raise SimulationError(f"unknown instruction {inst!r}")

    def _read(self, inst) -> None:
        buf = self.rowbuf.setdefault(inst.array, {})
        k = len(inst.rows)
        for idx, col in enumerate(inst.cols):
            vids = []
            for row in inst.rows:
                self._check_addr(inst.array, row, col)
                vids.append(self._load(
                    (inst.array, row, col),
                    f"read of uninitialized cell (array={inst.array}, "
                    f"row={row}, col={col})"))
            op = None if inst.ops is None else inst.ops[idx]
            buf[col] = self._new(_K_SENSE, op, k, tuple(vids))
        self.live[inst.array] = set(inst.cols)

    def _write(self, inst) -> None:
        buf = self.rowbuf.get(inst.array, {})
        for col in inst.cols:
            self._check_addr(inst.array, inst.row, col)
            if col not in buf:
                raise SimulationError(
                    f"write from empty row-buffer column {col} "
                    f"(array {inst.array})")
            self.store(inst.array, inst.row, col, buf[col])

    def _shift(self, inst) -> None:
        buf = self.rowbuf.get(inst.array, {})
        live = self.live.get(inst.array, set())
        shifted: dict[int, int] = {}
        shifted_live: set[int] = set()
        for col, vid in buf.items():
            new_col = col + inst.amount
            if 0 <= new_col < self.target.cols:
                shifted[new_col] = vid
                if col in live:
                    shifted_live.add(new_col)
            elif col in live:
                # compiled programs always execute in strict-shift mode
                raise SimulationError(
                    f"shift by {inst.amount} moves live row-buffer column "
                    f"{col} (array {inst.array}) outside [0, "
                    f"{self.target.cols}); the program would silently lose "
                    "sensed data")
        self.rowbuf[inst.array] = shifted
        self.live[inst.array] = shifted_live

    def _not(self, inst) -> None:
        buf = self.rowbuf.get(inst.array, {})
        for col in inst.cols:
            if col not in buf:
                raise SimulationError(
                    f"NOT of empty row-buffer column {col} "
                    f"(array {inst.array})")
            buf[col] = self._new(_K_NOT, None, 1, (buf[col],))

    def _transfer(self, inst) -> None:
        if not 0 <= inst.dst_array < self.target.num_arrays:
            raise SimulationError(
                f"xfer destination array {inst.dst_array} out of range for "
                f"target with {self.target.num_arrays} array(s)")
        src = self.rowbuf.get(inst.array, {})
        dst = self.rowbuf.setdefault(inst.dst_array, {})
        for col in inst.cols:
            if col not in src:
                raise SimulationError(
                    f"xfer from empty row-buffer column {col} "
                    f"(array {inst.array})")
            dst[col] = src[col]
        self.live[inst.dst_array] = set(inst.cols)

    # -- preload / extract ---------------------------------------------
    def preload(self, layout, dag, stage_inputs: dict[str, int],
                only: set[str] | None, check_names: frozenset[str]) -> None:
        """Mirror of :func:`repro.sim.executor.preload_sources` on vids."""
        from repro.dfg.graph import OperandKind

        self.input_checks.append(check_names)
        for operand in dag.operand_nodes():
            if operand.kind is OperandKind.INPUT:
                if only is not None and operand.name not in only:
                    continue
                vid = stage_inputs[operand.name]
            elif operand.kind is OperandKind.CONST:
                vid = self.const_vid(bool(operand.const_value))
            else:
                continue
            if layout.is_placed(operand.node_id):
                self.poke(layout.primary(operand.node_id), vid)

    def extract(self, layout, dag) -> dict[str, int]:
        """Mirror of :func:`repro.sim.executor.extract_outputs` on vids."""
        results: dict[str, int] = {}
        for name, oid in dag.outputs.items():
            addr = layout.primary(oid)
            self._check_addr(addr.array, addr.row, addr.col)
            results[name] = self._load(
                (addr.array, addr.row, addr.col),
                f"output {name!r} (operand {oid}) was never written to its "
                f"primary cell (array={addr.array}, row={addr.row}, "
                f"col={addr.col})")
        return results


def _lower(program, verify: bool) -> _Lowerer:
    """Lower a compiled program (flat or staged) into an SSA value table."""
    from repro.dfg.graph import OperandKind

    has_spares = (verify and program.stages is None
                  and any(True for _ in program.layout.spare_cells()))
    low = _Lowerer(program.target, program.fault_map, verify, has_spares)
    if program.stages is None:
        dag = program.dag
        names = frozenset(o.name for o in dag.inputs())
        stage_inputs = {name: low.input_vid(name) for name in names}
        low.preload(program.layout, dag, stage_inputs, only=None,
                    check_names=names)
        low.run(program.instructions)
        low.outputs = low.extract(program.layout, dag)
        return low

    boundary: dict[int, int] = {}
    for stage in program.stages:
        low.run(stage.bridge)
        stage_inputs = {}
        global_needed = set()
        for operand in stage.dag.inputs():
            if operand.name in stage.imports:
                stage_inputs[operand.name] = boundary[
                    stage.imports[operand.name]]
            else:
                stage_inputs[operand.name] = low.input_vid(operand.name)
                global_needed.add(operand.name)
        poked = {name for name in stage_inputs if name not in stage.bridged}
        low.preload(stage.mapping.layout, stage.dag, stage_inputs,
                    only=poked, check_names=frozenset(global_needed))
        low.run(stage.mapping.instructions)
        for name, vid in low.extract(stage.mapping.layout,
                                     stage.dag).items():
            boundary[stage.exports[name]] = vid
    for name, oid in program.dag.outputs.items():
        operand = program.dag.operand(oid)
        if operand.producer is None:
            if operand.kind is OperandKind.CONST:
                low.outputs[name] = low.const_vid(bool(operand.const_value))
            else:
                low.passthrough_checks.append((name, operand.name))
                low.outputs[name] = low.input_vid(operand.name)
        else:
            low.outputs[name] = boundary[oid]
    return low


# ----------------------------------------------------------------------
# execution plans
# ----------------------------------------------------------------------
@dataclass
class _Step:
    """One batched numpy operation: a level-group of same-signature defs."""

    op: OpType | None  # None = plain copy (injecting plans) or rowbuf NOT
    k: int
    sense: bool  # True = a sensing step (flip point on injecting plans)
    dst: np.ndarray  # (n,) storage slots defined by this step
    src: np.ndarray  # (n,) for k == 1 else (k, n) source storage slots
    invert: bool
    p: float = 0.0  # per-lane decision-failure probability (sense steps)
    pos: int = 0  # start offset in the flip-position layout


@dataclass
class _Plan:
    """An executable level-ordered schedule over storage slots."""

    n_slots: int
    inputs: dict[str, int]  # input name -> slot
    consts: list[tuple[int, bool]]  # (slot, all-ones?)
    steps: list[_Step]
    outputs: dict[str, int]  # output name -> slot
    writes: list[tuple[tuple[int, int, int], int]]  # (logical cell, slot)
    n_positions: int  # total flip positions (injecting plans)
    p_vector: np.ndarray | None  # (n_positions,) per-position P_DF
    #: write-pass indices whose logical cell is faulty in the program map
    faulty_writes: list[int] = field(default_factory=list)


def _build_plan(low: _Lowerer, tech, inject: bool) -> _Plan:
    n = len(low.kinds)
    resolve = list(range(n))
    if not inject:
        # plain single-row senses are exact copies: alias them away
        for vid in range(n):
            if low.kinds[vid] == _K_SENSE and low.ops[vid] is None:
                resolve[vid] = resolve[low.srcs[vid][0]]

    slots: dict[int, int] = {}
    levels = [0] * n
    groups: dict[tuple, list[tuple[int, list[int]]]] = {}
    order: dict[tuple, int] = {}
    for vid in range(n):
        kind = low.kinds[vid]
        if kind in (_K_INPUT, _K_CONST):
            slots[vid] = len(slots)
            continue
        if resolve[vid] != vid:
            levels[vid] = levels[resolve[vid]]
            continue
        src_reps = [resolve[s] for s in low.srcs[vid]]
        levels[vid] = 1 + max(levels[r] for r in src_reps)
        slots[vid] = len(slots)
        op = low.ops[vid]
        key = (levels[vid], kind,
               op.value if op is not None else None, low.ks[vid])
        order.setdefault(key, len(order))
        groups.setdefault(key, []).append((vid, src_reps))

    steps: list[_Step] = []
    pos = 0
    for key in sorted(groups, key=lambda k: (k[0], order[k])):
        level, kind, op_name, k = key
        members = groups[key]
        op = OpType(op_name) if op_name is not None else None
        dst = np.array([slots[vid] for vid, _ in members], dtype=np.intp)
        if k <= 1:
            src = np.array([slots[reps[0]] for _, reps in members],
                           dtype=np.intp)
        else:
            src = np.array([[slots[reps[i]] for _, reps in members]
                            for i in range(k)], dtype=np.intp)
        sense = kind == _K_SENSE
        invert = kind == _K_NOT or (sense and op is not None
                                    and op.is_inverted)
        step = _Step(op=op, k=k, sense=sense, dst=dst, src=src,
                     invert=invert)
        if sense and inject:
            step.p = (cached_p_df(tech, OpType.NOT, 1) if op is None
                      else cached_p_df(tech, op, k))
            step.pos = pos
            pos += len(dst)
        steps.append(step)

    p_vector = None
    if inject and pos:
        p_vector = np.empty(pos, dtype=np.float64)
        for step in steps:
            if step.sense:
                p_vector[step.pos:step.pos + len(step.dst)] = step.p

    writes = [(entry.logical, slots[resolve[entry.vid]])
              for entry in low.writes]
    faulty = []
    if low.fault_map is not None:
        faulty = [i for i, (cell, _) in enumerate(writes)
                  if low.fault_map.fault_at(*cell) is not None]
    return _Plan(
        n_slots=len(slots),
        inputs={name: slots[vid] for name, vid in low.input_ids.items()},
        consts=[(slots[vid], ones)
                for ones, vid in low.const_ids.items()],
        steps=steps,
        outputs={name: slots[resolve[vid]]
                 for name, vid in low.outputs.items()},
        writes=writes,
        n_positions=pos,
        p_vector=p_vector,
        faulty_writes=faulty)


# ----------------------------------------------------------------------
# runtime
# ----------------------------------------------------------------------
class VectorMachine:
    """Counter surface of one vectorized run (mirrors ``ArrayMachine``).

    Holds the same accounting an interpreted machine would after the
    equivalent run: injected lane flips, verify-after-write counters,
    discovered faults, installed remaps and per-cell write counts — the
    fields the differential test suite compares bit-for-bit on
    deterministic runs.
    """

    def __init__(self, lanes: int) -> None:
        if lanes < 1:
            raise SimulationError(
                f"lane count must be positive, got {lanes}")
        self.lanes = lanes
        self.injected_faults = 0
        #: per-trial injected flip counts of the latest batched run
        self.trial_faults: np.ndarray | None = None
        self.writes_verified = 0
        self.write_retries_used = 0
        self.write_failures_injected = 0
        self.discovered_faults = FaultMap()
        self.remaps: list[tuple[tuple[int, int, int],
                                tuple[int, int, int]]] = []
        self.write_counts: dict[tuple[int, int, int], int] = {}


def _generator_of(fault_rng) -> np.random.Generator:
    """A numpy Philox generator from any accepted ``fault_rng`` form."""
    if isinstance(fault_rng, np.random.Generator):
        return fault_rng
    if isinstance(fault_rng, random.Random):
        return np.random.Generator(np.random.Philox(fault_rng.getrandbits(64)))
    return np.random.Generator(np.random.Philox(int(fault_rng)))


def _scalar_rng_of(fault_rng) -> random.Random:
    """A Python RNG (for the write-verify pass) from ``fault_rng``."""
    if isinstance(fault_rng, random.Random):
        return fault_rng
    if isinstance(fault_rng, np.random.Generator):
        return random.Random(int(fault_rng.integers(0, 2**63)))
    return random.Random(int(fault_rng))


class VectorProgram:
    """A compiled program lowered to the vectorized op-table, ready to run.

    Instances are cached on the :class:`CompiledProgram` (see
    :func:`vector_program`), so the lowering cost is paid once per
    program and amortized over every later execution and batch.
    """

    def __init__(self, program, verify_writes: bool = False) -> None:
        self.program = program
        self.verify = verify_writes
        self.tech = program.target.technology
        self.write_retries = program.config.write_retries
        self._low = _lower(program, verify_writes)
        self._plans: dict[bool, _Plan] = {}

    def plan(self, inject: bool) -> _Plan:
        """The executable schedule, with or without fault injection."""
        plan = self._plans.get(inject)
        if plan is None:
            plan = _build_plan(self._low, self.tech, inject)
            self._plans[inject] = plan
        return plan

    # ------------------------------------------------------------------
    def _check_inputs(self, inputs) -> None:
        for names in self._low.input_checks:
            missing = names - set(inputs)
            if missing:
                raise SimulationError(
                    f"missing input values: {sorted(missing)}")
        for out_name, in_name in self._low.passthrough_checks:
            if in_name not in inputs:
                raise SimulationError(
                    f"missing input value for passthrough output "
                    f"{out_name!r}")

    def run_packed(self, packed: dict[str, np.ndarray], batch: int,
                   lanes: int, machine: VectorMachine,
                   gens: list[np.random.Generator] | None = None,
                   scalar_rng: random.Random | None = None,
                   ) -> dict[str, np.ndarray]:
        """Execute the op-table over pre-packed ``(B, W)`` input words.

        ``gens`` (one Philox generator per batch element) turns on sense
        fault injection; ``scalar_rng`` drives transient write-failure
        injection on the verify path.  Returns packed output words.
        """
        if lanes < 1:
            raise SimulationError(
                f"lane count must be positive, got {lanes}")
        inject = gens is not None
        plan = self.plan(inject)
        maskw = mask_words(lanes)
        width = maskw.shape[0]
        values = np.empty((plan.n_slots, batch, width), dtype=np.uint64)
        for slot, ones in plan.consts:
            values[slot] = maskw if ones else 0
        for name, slot in plan.inputs.items():
            values[slot] = packed[name]

        flip_words = None
        if inject and plan.n_positions:
            flips = np.empty((batch, plan.n_positions, lanes), dtype=bool)
            p_col = plan.p_vector[:, None]
            for t, gen in enumerate(gens):
                flips[t] = gen.random((plan.n_positions, lanes)) < p_col
            counts = flips.sum(axis=(1, 2))
            machine.trial_faults = counts
            machine.injected_faults += int(counts.sum())
            # (positions, B, W) so per-step slices need no transpose
            flip_words = _pack_lane_bools(
                np.ascontiguousarray(flips.transpose(1, 0, 2)), lanes)
        elif inject:
            machine.trial_faults = np.zeros(batch, dtype=np.int64)

        for step in plan.steps:
            if step.k <= 1:
                result = values[step.src]
            else:
                srcv = values[step.src]
                base = step.op.base
                if step.k == 2:
                    if base is OpType.AND:
                        result = srcv[0] & srcv[1]
                    elif base is OpType.OR:
                        result = srcv[0] | srcv[1]
                    else:
                        result = srcv[0] ^ srcv[1]
                elif base is OpType.AND:
                    result = np.bitwise_and.reduce(srcv, axis=0)
                elif base is OpType.OR:
                    result = np.bitwise_or.reduce(srcv, axis=0)
                else:
                    result = np.bitwise_xor.reduce(srcv, axis=0)
            if step.invert:
                result = result ^ maskw
            if flip_words is not None and step.sense:
                result = result ^ flip_words[step.pos:step.pos
                                             + len(step.dst)]
            values[step.dst] = result

        if self.verify:
            self._run_writes(plan, values, maskw, machine, scalar_rng)
        else:
            for cell, _ in plan.writes:
                machine.write_counts[cell] = (
                    machine.write_counts.get(cell, 0) + 1)
        return {name: values[slot] for name, slot in plan.outputs.items()}

    # ------------------------------------------------------------------
    def _run_writes(self, plan: _Plan, values: np.ndarray,
                    maskw: np.ndarray, machine: VectorMachine,
                    scalar_rng: random.Random | None) -> None:
        """Replay the verify-after-write escalation ladder (batch of 1)."""
        p_wf = self.tech.write_failure_probability
        inject_wf = scalar_rng is not None and p_wf > 0.0
        if not inject_wf and not plan.faulty_writes:
            # healthy cells, no transient injection: every write verifies
            # clean on the first read-back
            machine.writes_verified += len(plan.writes)
            for cell, _ in plan.writes:
                machine.write_counts[cell] = (
                    machine.write_counts.get(cell, 0) + 1)
            return
        spares: dict[tuple[int, int], list[int]] = {}
        if self.program.stages is None:
            for addr in self.program.layout.spare_cells():
                spares.setdefault((addr.array, addr.col),
                                  []).append(addr.row)
            for rows in spares.values():
                rows.sort()
        remap: dict[tuple[int, int, int], tuple[int, int, int]] = {}
        stored: dict[tuple[int, int, int], np.ndarray] = {}
        fault_map = self.program.fault_map
        zeros = np.zeros_like(maskw)

        def cell_fault(key):
            if fault_map is not None:
                fault = fault_map.fault_at(*key)
                if fault is not None:
                    return fault
            return machine.discovered_faults.fault_at(*key)

        if inject_wf:
            slow = range(len(plan.writes))
        else:
            # without transient injection only faulty targets can escalate;
            # a remapped target is a healthy spare, so every other entry
            # verifies clean on its first read-back and bulk-counts
            faulty = set(plan.faulty_writes)
            machine.writes_verified += len(plan.writes) - len(faulty)
            for i, (cell, _) in enumerate(plan.writes):
                if i not in faulty:
                    machine.write_counts[cell] = (
                        machine.write_counts.get(cell, 0) + 1)
            slow = plan.faulty_writes
        for index in slow:
            logical, slot = plan.writes[index]
            value = values[slot, 0]
            attempts = 0
            total_attempts = 0
            spares_tried = 0
            while True:
                key = remap.get(logical, logical)
                store_value = value
                if inject_wf and scalar_rng.random() < p_wf:
                    store_value = value ^ maskw
                    machine.write_failures_injected += 1
                fault = cell_fault(key)
                if fault is None:
                    stored[key] = store_value
                machine.write_counts[key] = (
                    machine.write_counts.get(key, 0) + 1)
                attempts += 1
                total_attempts += 1
                machine.writes_verified += 1
                if fault is not None:
                    readback = maskw if fault is CellFault.STUCK1 else zeros
                else:
                    readback = stored.get(key, zeros)
                if np.array_equal(readback, value):
                    break
                if attempts <= self.write_retries:
                    machine.write_retries_used += 1
                    continue
                machine.discovered_faults.mark_dead(*key)
                spare = None
                rows = spares.get((logical[0], logical[2]), [])
                while rows:
                    candidate = (logical[0], rows.pop(0), logical[2])
                    if cell_fault(candidate) is None:
                        spare = candidate
                        break
                if spare is None:
                    raise HardFaultError(
                        f"write to cell (array={logical[0]}, "
                        f"row={logical[1]}, col={logical[2]}) failed after "
                        f"{total_attempts} attempts and {spares_tried} "
                        f"spare cells; no healthy spare left in column "
                        f"{logical[2]} of array {logical[0]}",
                        cell=logical, physical_cell=key,
                        attempts=total_attempts, spares_tried=spares_tried)
                remap[logical] = spare
                machine.remaps.append((logical, spare))
                spares_tried += 1
                attempts = 0


def vector_program(program, verify_writes: bool = False) -> VectorProgram:
    """The (cached) vectorized lowering of a compiled program.

    The lowering is cached on the program instance, keyed by the verify
    flag — repeated executions, batches and campaign shards all reuse
    one op-table.
    """
    cache = program.__dict__.setdefault("_vector_cache", {})
    cached = cache.get(verify_writes)
    if cached is None:
        cached = VectorProgram(program, verify_writes)
        cache[verify_writes] = cached
    return cached


# ----------------------------------------------------------------------
# public execution entry points
# ----------------------------------------------------------------------
def _pack_inputs(plan: _Plan, input_sets, lanes: int) -> dict[str, np.ndarray]:
    return {name: pack_values([s[name] for s in input_sets], lanes)
            for name in plan.inputs}


def execute(program, inputs: dict[str, int], lanes: int = 64,
            fault_rng=None, verify_writes: bool = False,
            machine: VectorMachine | None = None) -> dict[str, int]:
    """Execute one input set on the vectorized backend.

    Mirrors :meth:`CompiledProgram.execute` semantics (minus sense
    observers, which need the interpreted machine).  ``fault_rng`` may
    be an int seed, a :class:`random.Random` or a numpy ``Generator``;
    the injected-fault *distribution* matches the interpreter but the
    draw stream is the vectorized backend's own.  Pass a ``machine`` to
    read back the run's counters.
    """
    vp = vector_program(program, verify_writes)
    vp._check_inputs(inputs)
    machine = machine if machine is not None else VectorMachine(lanes)
    gens = None
    scalar = None
    if fault_rng is not None:
        scalar = _scalar_rng_of(fault_rng) if verify_writes else None
        gens = [_generator_of(fault_rng)]
    packed = _pack_inputs(vp.plan(gens is not None), [inputs], lanes)
    out = vp.run_packed(packed, 1, lanes, machine, gens=gens,
                        scalar_rng=scalar)
    return {name: unpack_values(words, lanes)[0]
            for name, words in out.items()}


def execute_many(program, input_sets, lanes: int = 64,
                 chunk: int = 256) -> list[dict[str, int]]:
    """Stream many independent input sets through one lowered program.

    The program is lowered once (and the lowering is cached on the
    program instance); input sets run through the op-table in
    memory-bounded chunks of ``chunk`` sets.  Equivalent to calling
    :func:`execute` per set, just much faster.
    """
    if chunk < 1:
        raise SimulationError(f"chunk size must be positive, got {chunk}")
    vp = vector_program(program, False)
    sets = list(input_sets)
    results: list[dict[str, int]] = []
    for start in range(0, len(sets), chunk):
        block = sets[start:start + chunk]
        for inputs in block:
            vp._check_inputs(inputs)
        machine = VectorMachine(lanes)
        packed = _pack_inputs(vp.plan(False), block, lanes)
        out = vp.run_packed(packed, len(block), lanes, machine)
        unpacked = {name: unpack_values(words, lanes)
                    for name, words in out.items()}
        results.extend({name: unpacked[name][i] for name in unpacked}
                       for i in range(len(block)))
    return results


def _eval_packed(dag, packed: dict[str, np.ndarray],
                 lanes: int) -> dict[str, np.ndarray]:
    """Reference DAG evaluation over packed words (batched `evaluate`)."""
    from repro.dfg.graph import OperandKind

    maskw = mask_words(lanes)
    values: dict[int, np.ndarray] = {}
    for operand in dag.operand_nodes():
        if operand.kind is OperandKind.INPUT:
            values[operand.node_id] = packed[operand.name]
        elif operand.kind is OperandKind.CONST:
            base = packed[next(iter(packed))] if packed else None
            shape = (base.shape[0] if base is not None else 1,
                     maskw.shape[0])
            values[operand.node_id] = (
                np.broadcast_to(maskw if operand.const_value else
                                np.zeros_like(maskw), shape))
    for op_id in dag.topological_ops():
        node = dag.op(op_id)
        vals = [values[oid] for oid in node.operands]
        op = node.op
        if op is OpType.NOT:
            acc = vals[0] ^ maskw
        else:
            acc = vals[0]
            if op.base is OpType.AND:
                for v in vals[1:]:
                    acc = acc & v
            elif op.base is OpType.OR:
                for v in vals[1:]:
                    acc = acc | v
            else:
                for v in vals[1:]:
                    acc = acc ^ v
            if op.is_inverted:
                acc = acc ^ maskw
        values[node.result] = acc
    return {name: values[oid] for name, oid in dag.outputs.items()}


def campaign_trials(program, input_sets, rng_keys, lanes: int,
                    chunk: int = 512) -> tuple[np.ndarray, np.ndarray]:
    """Batched fault-injection trials for the campaign fast path.

    ``input_sets`` and ``rng_keys`` are parallel per-trial lists; each
    trial draws its sense flips from a Philox stream keyed by its own
    ``rng_keys`` entry, so results are independent of chunking *and* of
    how a campaign sharded the trial range.  Returns per-trial arrays:
    injected flip counts, and whether the trial's outputs mismatched the
    reference DAG evaluation.
    """
    vp = vector_program(program, False)
    sets = list(input_sets)
    keys = list(rng_keys)
    flips = np.zeros(len(sets), dtype=np.int64)
    mismatch = np.zeros(len(sets), dtype=bool)
    source_names = [o.name for o in program.source_dag.inputs()]
    for start in range(0, len(sets), chunk):
        block = sets[start:start + chunk]
        for inputs in block:
            vp._check_inputs(inputs)
        machine = VectorMachine(lanes)
        packed = {name: pack_values([s[name] for s in block], lanes)
                  for name in set(source_names) | set(vp.plan(True).inputs)}
        gens = [np.random.Generator(np.random.Philox(key))
                for key in keys[start:start + chunk]]
        out = vp.run_packed(packed, len(block), lanes, machine, gens=gens)
        flips[start:start + len(block)] = machine.trial_faults
        expected = _eval_packed(program.source_dag, packed, lanes)
        bad = np.zeros(len(block), dtype=bool)
        for name, words in expected.items():
            bad |= (out[name] != words).any(axis=1)
        mismatch[start:start + len(block)] = bad
    return flips, mismatch
