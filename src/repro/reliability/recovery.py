"""Detect-and-recover execution of compiled programs under injected faults.

The analytic model (:mod:`repro.devices.failure`) says how often a sensing
decision fails; this module is what a controller can *do* about it.  Three
pluggable policies close the detect → retry → degrade loop:

* ``reread-vote`` — re-sense every CIM read so each column is sensed an odd
  number of times (default 3) and take a per-lane majority vote.  Decision
  failures are independent across senses, so the per-lane failure
  probability drops from ``p`` to roughly ``3p²``.
* ``checkpoint-replay`` — snapshot the machine every K instructions; at the
  end of the run compare the outputs against a shadow check (the reference
  DAG evaluation, modeling a cheap controller-side recomputation).  On a
  mismatch, roll back and replay with a bounded retry budget, escalating to
  an older checkpoint on every retry so corruption that predates the last
  snapshot is eventually replayed too.
* ``degrade-mra`` — detect a suspect multi-row read by double-sensing;
  after R disagreeing retries, re-execute the op as a chain of MRA = 2
  reads (the paper's own reliability knob, Sec. 4.2, applied dynamically):
  ``k − 1`` two-row senses at the far smaller ``P_DF(op, 2)`` plus ``k − 2``
  intermediate write-backs.

Every recovery action is priced with the :mod:`repro.sim.metrics` cost
helpers and accumulated in :class:`RecoveryStats`, so the latency/energy
overhead of reliability lands in the same units as the base schedule
(``TraceMetrics.with_recovery``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields

from repro.dfg.evaluate import evaluate
from repro.dfg.ops import OpType, apply_op
from repro.errors import SimulationError
from repro.sim.executor import ArrayMachine, extract_outputs, preload_sources
from repro.sim.metrics import (
    TraceMetrics,
    analyze_trace,
    read_cost,
    rowbuf_not_cost,
    write_cost,
)

__all__ = [
    "POLICIES",
    "CheckpointReplay",
    "DegradeMra",
    "NoRecovery",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "RecoveryStats",
    "RereadVote",
    "execute_with_recovery",
    "get_policy",
    "register_policy",
]


@dataclass
class RecoveryStats:
    """Everything a recovery policy did during one (or many) runs."""

    #: re-sense reads issued beyond the scheduled one
    extra_senses: int = 0
    #: majority votes taken (one per voted CIM column sense)
    votes: int = 0
    #: sense disagreements detected (vote splits / double-sense mismatches)
    disagreements: int = 0
    #: CIM ops dynamically degraded to an MRA = 2 chain
    degraded_ops: int = 0
    #: two-row reads issued by degraded chains
    degraded_reads: int = 0
    #: intermediate write-backs issued by degraded chains
    degraded_writes: int = 0
    #: machine snapshots taken
    checkpoints: int = 0
    #: rollbacks to a checkpoint after a failed shadow check
    rollbacks: int = 0
    #: instructions re-executed during replays
    replayed_instructions: int = 0
    #: recoveries abandoned with the retry budget exhausted
    retries_exhausted: int = 0
    #: priced overhead of all of the above, in controller cycles
    overhead_latency_cycles: int = 0
    #: priced overhead of all of the above, in picojoules
    overhead_energy_pj: float = 0.0

    def charge(self, cycles: int, energy_pj: float) -> None:
        """Add priced recovery work to the overhead accumulators."""
        self.overhead_latency_cycles += cycles
        self.overhead_energy_pj += energy_pj

    def merge(self, other: "RecoveryStats") -> None:
        """Fold another stats record into this one (campaign aggregation)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


class RecoveryPolicy:
    """Base policy: how to run a compiled program under faults.

    The default implementation is fault-oblivious plain execution; policies
    override :meth:`execute` (run-level recovery) or act as a
    :class:`repro.sim.executor.SenseObserver` (sense-level recovery) via
    :class:`_SensePolicy`.  A policy instance accumulates one
    :class:`RecoveryStats`; use a fresh instance per measured run.
    """

    name = "none"

    def __init__(self) -> None:
        self.stats = RecoveryStats()
        #: the machine of the most recent :meth:`execute` (fault accounting)
        self.machine: ArrayMachine | None = None

    def _make_machine(self, program, lanes: int,
                      fault_rng: random.Random | int | None,
                      observer=None) -> ArrayMachine:
        """Build (and retain) the strict-mode machine for one run.

        The machine carries the program's hard-fault map (if it was
        compiled around one), so campaigns measure transient recovery on
        top of the permanent faults rather than on pristine silicon.
        Forcing stuck cells draws nothing from the fault RNG, so seeded
        campaigns without a fault map keep bit-identical streams.
        """
        self.machine = ArrayMachine(program.target, lanes, fault_rng,
                                    strict_shift=True, observer=observer,
                                    fault_map=getattr(program, "fault_map",
                                                      None))
        return self.machine

    def execute(self, program, inputs: dict[str, int], lanes: int = 64,
                fault_rng: random.Random | int | None = None,
                expected: dict[str, int] | None = None) -> dict[str, int]:
        """Run the program and return its outputs (possibly recovered)."""
        machine = self._make_machine(program, lanes, fault_rng)
        preload_sources(machine, program.layout, program.dag, inputs)
        machine.run(program.instructions)
        return extract_outputs(machine, program.layout, program.dag)


#: the policy registry consulted by :func:`get_policy` and the campaign CLI
POLICIES: dict[str, type[RecoveryPolicy]] = {}


def register_policy(cls: type[RecoveryPolicy]) -> type[RecoveryPolicy]:
    """Register a :class:`RecoveryPolicy` subclass under its ``name``.

    Use as a class decorator.  Registered policies become valid ``policy``
    names for :func:`get_policy`, :func:`repro.reliability.run_campaign`
    and the ``sherlock campaign`` CLI.  Because parallel campaigns ship
    policy names (not instances) to worker processes and instantiate there,
    a registered class must be defined at module level in an importable
    module — a requirement pickling enforces anyway for any class that
    crosses a process boundary.
    """
    if not isinstance(cls.name, str) or not cls.name:
        raise SimulationError(
            f"policy class {cls.__name__} must define a non-empty 'name'")
    if cls.name in POLICIES and POLICIES[cls.name] is not cls:
        raise SimulationError(
            f"recovery policy name {cls.name!r} already registered "
            f"by {POLICIES[cls.name].__name__}")
    POLICIES[cls.name] = cls
    return cls


@register_policy
class NoRecovery(RecoveryPolicy):
    """Fault-oblivious execution — the baseline every policy is judged against."""


class _SensePolicy(RecoveryPolicy):
    """A policy that intercepts every sensed CIM column value."""

    def execute(self, program, inputs: dict[str, int], lanes: int = 64,
                fault_rng: random.Random | int | None = None,
                expected: dict[str, int] | None = None) -> dict[str, int]:
        """Run the program with this policy hooked into every sense."""
        machine = self._make_machine(program, lanes, fault_rng, observer=self)
        preload_sources(machine, program.layout, program.dag, inputs)
        machine.run(program.instructions)
        return extract_outputs(machine, program.layout, program.dag)

    def on_sense(self, machine: ArrayMachine, op: OpType | None, k: int,
                 values: list[int], result: int, resense) -> int:
        """Decide the row-buffer value for one sensed column."""
        raise NotImplementedError


def _majority(senses: list[int], mask: int) -> int:
    """Per-lane majority of an odd number of lane bitmasks."""
    if len(senses) == 3:
        a, b, c = senses
        return (a & b) | (a & c) | (b & c)
    # bit-sliced ripple-carry counter: planes[i] = lanes whose count has
    # bit i set; then a lane-parallel compare against the majority threshold
    planes: list[int] = []
    for s in senses:
        carry = s
        for i in range(len(planes)):
            planes[i], carry = planes[i] ^ carry, planes[i] & carry
            if not carry:
                break
        if carry:
            planes.append(carry)
    need = len(senses) // 2 + 1
    greater = 0
    equal = mask
    for i in reversed(range(len(planes))):
        need_bit = (need >> i) & 1
        if need_bit:
            equal &= planes[i]
        else:
            greater |= equal & planes[i]
            equal &= ~planes[i] & mask
    return greater | equal


@register_policy
class RereadVote(_SensePolicy):
    """Re-sense each CIM read and take a per-lane majority vote."""

    name = "reread-vote"

    def __init__(self, votes: int = 3) -> None:
        super().__init__()
        if votes < 3 or votes % 2 == 0:
            raise SimulationError(f"vote count must be odd and >= 3, got {votes}")
        self.votes = votes

    def on_sense(self, machine: ArrayMachine, op: OpType | None, k: int,
                 values: list[int], result: int, resense) -> int:
        """Majority-vote the column over ``votes`` independent senses."""
        if op is None:
            return result  # plain single-row reads are not CIM decisions
        senses = [result] + [resense() for _ in range(self.votes - 1)]
        extra = self.votes - 1
        cycles, energy = read_cost(machine.target, k, 1)
        self.stats.extra_senses += extra
        self.stats.charge(extra * cycles, extra * energy)
        self.stats.votes += 1
        if any(s != senses[0] for s in senses[1:]):
            self.stats.disagreements += 1
        return _majority(senses, machine.mask)


@register_policy
class DegradeMra(_SensePolicy):
    """Double-sense detection with dynamic degradation to MRA = 2 chains."""

    name = "degrade-mra"

    def __init__(self, retries: int = 2) -> None:
        super().__init__()
        if retries < 0:
            raise SimulationError(f"retry budget must be >= 0, got {retries}")
        self.retries = retries

    def on_sense(self, machine: ArrayMachine, op: OpType | None, k: int,
                 values: list[int], result: int, resense) -> int:
        """Accept agreeing senses; degrade a persistently suspect read."""
        if op is None:
            return result
        cycles, energy = read_cost(machine.target, k, 1)
        second = resense()
        self.stats.extra_senses += 1
        self.stats.charge(cycles, energy)
        if second == result:
            return result
        self.stats.disagreements += 1
        for _ in range(self.retries):
            a, b = resense(), resense()
            self.stats.extra_senses += 2
            self.stats.charge(2 * cycles, 2 * energy)
            if a == b:
                return a
        if k <= 2 or not op.base.is_associative:
            # nothing lower to degrade to: accept the last sense
            self.stats.retries_exhausted += 1
            return second
        return self._degrade(machine, op, values)

    def _degrade(self, machine: ArrayMachine, op: OpType,
                 values: list[int]) -> int:
        """Re-execute the op as ``k − 1`` two-row senses plus write-backs.

        Each chain stage senses two rows, so it fails with the far smaller
        ``P_DF(base, 2)``; inverted ops finish with a fault-free row-buffer
        CMOS NOT.  Intermediates are written back to scratch cells between
        stages (``k − 2`` writes), which is where the overhead lives.
        """
        base = op.base
        k = len(values)
        acc = values[0]
        for value in values[1:]:
            true = apply_op(base, [acc, value], machine.mask)
            # same fault model as any two-row sense of this op family
            acc = machine._inject(true, base, 2) if machine.fault_rng else true
        if op.is_inverted:
            acc = ~acc & machine.mask
        read_c, read_e = read_cost(machine.target, 2, 1)
        write_c, write_e = write_cost(machine.target, 1)
        chain_cycles = (k - 1) * read_c + (k - 2) * write_c
        chain_energy = (k - 1) * read_e + (k - 2) * write_e
        if op.is_inverted:
            not_c, not_e = rowbuf_not_cost(machine.target, 1)
            chain_cycles += not_c
            chain_energy += not_e
        self.stats.charge(chain_cycles, chain_energy)
        self.stats.degraded_ops += 1
        self.stats.degraded_reads += k - 1
        self.stats.degraded_writes += k - 2
        return acc


@register_policy
class CheckpointReplay(RecoveryPolicy):
    """Periodic snapshots plus end-of-run shadow check and bounded replay."""

    name = "checkpoint-replay"

    def __init__(self, interval: int = 32, retries: int = 3) -> None:
        super().__init__()
        if interval < 1:
            raise SimulationError(f"checkpoint interval must be >= 1, got {interval}")
        if retries < 0:
            raise SimulationError(f"retry budget must be >= 0, got {retries}")
        self.interval = interval
        self.retries = retries

    def execute(self, program, inputs: dict[str, int], lanes: int = 64,
                fault_rng: random.Random | int | None = None,
                expected: dict[str, int] | None = None) -> dict[str, int]:
        """Run with checkpoints; on a failed shadow check, roll back and replay.

        Retry ``r`` rolls back ``2**(r-1)`` checkpoints (exponential
        escalation, clamped at the preloaded initial state), so corruption
        arbitrarily far before the last snapshot is replayed within a few
        attempts.  Replayed instructions are priced at full trace cost; the
        snapshot itself is modeled as a free controller-side state copy and
        the shadow check as a host-side recomputation.
        """
        if expected is None:
            expected = evaluate(program.source_dag, inputs, lanes)
        machine = self._make_machine(program, lanes, fault_rng)
        preload_sources(machine, program.layout, program.dag, inputs)
        instructions = program.instructions
        checkpoints = [(0, machine.snapshot())]
        self.stats.checkpoints += 1
        for pc, inst in enumerate(instructions):
            machine.execute(inst)
            if (pc + 1) % self.interval == 0 and pc + 1 < len(instructions):
                checkpoints.append((pc + 1, machine.snapshot()))
                self.stats.checkpoints += 1
        outputs = extract_outputs(machine, program.layout, program.dag)
        attempt = 0
        while outputs != expected and attempt < self.retries:
            attempt += 1
            depth = 1 << (attempt - 1)
            start_pc, state = checkpoints[max(0, len(checkpoints) - depth)]
            machine.restore(state)
            self.stats.rollbacks += 1
            replay = instructions[start_pc:]
            for inst in replay:
                machine.execute(inst)
            self.stats.replayed_instructions += len(replay)
            replay_metrics = analyze_trace(replay, program.target)
            self.stats.charge(replay_metrics.latency_cycles,
                              replay_metrics.energy_pj)
            outputs = extract_outputs(machine, program.layout, program.dag)
        if outputs != expected:
            self.stats.retries_exhausted += 1
        return outputs


def get_policy(name: str, **kwargs) -> RecoveryPolicy:
    """Instantiate a recovery policy by registry name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise SimulationError(
            f"unknown recovery policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    return cls(**kwargs)


@dataclass(frozen=True)
class RecoveryOutcome:
    """One recovered execution: outputs, verdict, stats and priced metrics."""

    policy: str
    outputs: dict[str, int]
    expected: dict[str, int]
    stats: RecoveryStats
    #: the program's metrics with the recovery overhead folded in
    metrics: TraceMetrics

    @property
    def failed(self) -> bool:
        """Whether the run still produced wrong outputs after recovery."""
        return self.outputs != self.expected


def execute_with_recovery(program, inputs: dict[str, int], lanes: int = 64,
                          fault_rng: random.Random | int | None = None,
                          policy: RecoveryPolicy | str | None = None,
                          ) -> RecoveryOutcome:
    """Execute a compiled program under one recovery policy and price it.

    ``policy`` may be a policy instance, a registry name, or ``None``
    (plain execution).  The returned outcome carries the reference outputs
    (``repro.dfg.evaluate``), the policy's :class:`RecoveryStats`, and the
    program metrics with the recovery overhead applied.
    """
    if policy is None:
        policy = NoRecovery()
    elif isinstance(policy, str):
        policy = get_policy(policy)
    expected = evaluate(program.source_dag, inputs, lanes)
    outputs = policy.execute(program, inputs, lanes, fault_rng,
                             expected=expected)
    metrics = program.metrics.with_recovery(
        policy.stats.overhead_latency_cycles, policy.stats.overhead_energy_pj)
    return RecoveryOutcome(policy=policy.name, outputs=outputs,
                           expected=expected, stats=policy.stats,
                           metrics=metrics)
