"""Array-lifetime campaigns: wear cells out, remap, recompile, die.

The Monte-Carlo campaign of :mod:`repro.reliability.campaign` studies
*transient* sensing faults; this module studies the array's *end of life*.
Each trial ages the arrays under repeated kernel executions: per-cell write
counts accumulate (statically, from the instruction trace — cheap enough to
simulate thousands of executions), every cell carries its own randomized
endurance threshold, and when a cell's cumulative writes cross it the cell
dies for good.  From there the hard-fault ladder engages:

1. **wear-leveling** (optional): each execution epoch runs the program
   through a round-robin row rotation (:mod:`repro.sim.wearlevel`), so hot
   logical rows sweep over all physical rows instead of grinding one down;
2. **remap/recompile**: a death inside the program's footprint triggers the
   ``remap`` rung — the dead cells join the fault map and the program is
   recompiled fault-aware around them;
3. **death**: recompilation eventually fails with
   :class:`repro.errors.CapacityError` — the healthy cells no longer fit
   the program.  That epoch is the array's executions-to-death.

A matching *baseline* (no rotation, no remap — the array dies with its
first worn-out cell) runs on the same per-cell endurance draws, so each
trial is a paired comparison.  Death-within-horizon proportions reuse the
campaign's Wilson machinery (:func:`repro.reliability.campaign.wilson_interval`).

Endurance here is *simulation-scale* (hundreds of writes, not the 1e8+ of
real devices): the point is the mitigation dynamics, not absolute hours.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.arch.target import TargetSpec
from repro.core.compiler import SherlockCompiler
from repro.core.config import CompilerConfig
from repro.devices.faultmap import FaultMap
from repro.dfg.evaluate import evaluate
from repro.dfg.graph import DataFlowGraph
from repro.errors import MappingError, SimulationError
from repro.reliability.campaign import wilson_interval
from repro.sim.endurance import static_write_counts
from repro.sim.vectorized import validate_engine
from repro.sim.wearlevel import (
    placement_conflicts,
    rotate_instructions,
    rotate_layout,
    rotate_program,
)

__all__ = [
    "LifetimeResult",
    "run_lifetime",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MIX_A = 0x9E3779B1
_MIX_B = 0x85EBCA77
_MIX_C = 0xC2B2AE3D

_Cell = tuple[int, int, int]


def _cell_endurance(seed: int, trial: int, cell: _Cell,
                    endurance: float, spread: float) -> float:
    """The randomized write budget of one physical cell in one trial.

    Purely a function of ``(seed, trial, cell)``, so baseline and mitigated
    agings of the same trial wear the very same silicon.  Gaussian spread
    around the nominal endurance, floored at one write.
    """
    if spread <= 0.0:
        return endurance
    key = (seed * _MIX_A + trial * _MIX_B
           + (hash(cell) & 0xFFFFFFFF) * _MIX_C) & _MASK64
    rng = random.Random(key)
    return max(1.0, endurance * (1.0 + spread * rng.gauss(0.0, 1.0)))


class _WearState:
    """Cumulative wear of one trial's arrays, with lazy endurance draws."""

    def __init__(self, seed: int, trial: int, endurance: float,
                 spread: float) -> None:
        self.seed = seed
        self.trial = trial
        self.endurance = endurance
        self.spread = spread
        self.cum: dict[_Cell, float] = {}
        self._limits: dict[_Cell, float] = {}

    def limit(self, cell: _Cell) -> float:
        """This cell's endurance threshold (drawn once, cached)."""
        limit = self._limits.get(cell)
        if limit is None:
            limit = _cell_endurance(self.seed, self.trial, cell,
                                    self.endurance, self.spread)
            self._limits[cell] = limit
        return limit

    def add(self, counts: dict[_Cell, int], times: int = 1) -> None:
        """Accumulate ``times`` epochs worth of per-cell writes."""
        for cell, count in counts.items():
            self.cum[cell] = self.cum.get(cell, 0.0) + count * times

    def newly_dead(self, counts: dict[_Cell, int],
                   fault_map: FaultMap) -> list[_Cell]:
        """Cells of ``counts`` now past their limit and not yet diagnosed."""
        return sorted(
            cell for cell in counts
            if self.cum.get(cell, 0.0) >= self.limit(cell)
            and fault_map.is_healthy(*cell))

    def safe_epochs(self, per_epoch: dict[_Cell, float]) -> int:
        """Whole epochs guaranteed death-free at this per-epoch wear rate."""
        safe = None
        for cell, rate in per_epoch.items():
            if rate <= 0:
                continue
            left = self.limit(cell) - self.cum.get(cell, 0.0)
            cell_safe = max(0, math.ceil(left / rate) - 1)
            safe = cell_safe if safe is None else min(safe, cell_safe)
        return 10**9 if safe is None else safe


def _orbit_counts(program, rows: int, stride: int, wear_leveling: bool,
                  fault_map: FaultMap):
    """Usable rotation offsets and their per-offset/per-period write counts.

    Returns ``(offsets, shifted, period_counts)``: the offsets the epoch
    schedule cycles through (round-robin), the per-cell counts at each
    offset, and their sum over one full cycle.  Offsets whose rotation
    lands a placement on a known-faulty cell are excluded — a real
    controller would not rotate data onto dead cells; offset 0 always
    stays (the program is compiled around ``fault_map``, so it is
    conflict-free by construction).  Without wear-leveling the orbit is
    the single offset 0.
    """
    base = static_write_counts(program.instructions)
    if not wear_leveling:
        return [0], {0: base}, dict(base)
    period = rows // math.gcd(stride, rows)
    candidates = sorted({(i * stride) % rows for i in range(period)})
    all_shifted = {
        offset: static_write_counts(
            rotate_instructions(program.instructions, offset, rows))
        for offset in candidates}
    offsets = [
        offset for offset in candidates
        if offset == 0 or (
            all(fault_map.is_healthy(*cell) for cell in all_shifted[offset])
            and not placement_conflicts(
                rotate_layout(program.layout, offset), fault_map))]
    shifted = {offset: all_shifted[offset] for offset in offsets}
    period_counts: dict[_Cell, float] = {}
    for offset in offsets:
        for cell, count in shifted[offset].items():
            period_counts[cell] = period_counts.get(cell, 0.0) + count
    return offsets, shifted, period_counts


@dataclass(frozen=True)
class LifetimeResult:
    """Aggregate outcome of one lifetime campaign."""

    program_name: str
    technology: str
    trials: int
    seed: int
    #: simulation-scale nominal endurance (writes per cell)
    endurance: float
    #: relative Gaussian spread of per-cell endurance draws
    endurance_spread: float
    #: censoring horizon, in kernel executions
    horizon: int
    wear_leveling: bool
    rotation_stride: int
    #: per-trial executions-to-death without mitigation (None = survived)
    baseline_deaths: tuple
    #: per-trial executions-to-death with rotation + remap (None = survived)
    mitigated_deaths: tuple
    #: per-trial execution of the first remap/recompile (None = never)
    first_remaps: tuple
    #: per-trial number of fault-aware recompiles performed
    recompiles: tuple
    #: functional-validation mismatches across all recompiles (should be 0)
    validation_failures: int = 0

    # ------------------------------------------------------------------
    def _censored_mean(self, deaths: tuple) -> float:
        return sum(self.horizon if d is None else d
                   for d in deaths) / len(deaths)

    @property
    def baseline_dead(self) -> int:
        """Trials whose unmitigated array died within the horizon."""
        return sum(1 for d in self.baseline_deaths if d is not None)

    @property
    def mitigated_dead(self) -> int:
        """Trials whose mitigated array died within the horizon."""
        return sum(1 for d in self.mitigated_deaths if d is not None)

    @property
    def baseline_death_wilson(self) -> tuple[float, float]:
        """Wilson 95% CI of the baseline death-within-horizon proportion."""
        return wilson_interval(self.baseline_dead, self.trials)

    @property
    def mitigated_death_wilson(self) -> tuple[float, float]:
        """Wilson 95% CI of the mitigated death-within-horizon proportion."""
        return wilson_interval(self.mitigated_dead, self.trials)

    @property
    def mean_baseline_death(self) -> float:
        """Mean executions-to-death without mitigation (censored at horizon)."""
        return self._censored_mean(self.baseline_deaths)

    @property
    def mean_mitigated_death(self) -> float:
        """Mean executions-to-death with mitigation (censored at horizon)."""
        return self._censored_mean(self.mitigated_deaths)

    @property
    def mean_first_remap(self) -> float | None:
        """Mean execution of the first remap (None when no trial remapped)."""
        remapped = [r for r in self.first_remaps if r is not None]
        if not remapped:
            return None
        return sum(remapped) / len(remapped)

    @property
    def extension_factor(self) -> float:
        """Mitigated over baseline mean executions-to-death."""
        base = self.mean_baseline_death
        if base == 0:
            return float("inf")
        return self.mean_mitigated_death / base

    def summary(self) -> dict[str, float]:
        """Flat dictionary for table printing."""
        base_lo, base_hi = self.baseline_death_wilson
        mit_lo, mit_hi = self.mitigated_death_wilson
        return {
            "trials": self.trials,
            "baseline_mean_death": self.mean_baseline_death,
            "baseline_dead_frac": self.baseline_dead / self.trials,
            "baseline_dead_ci95_lo": base_lo,
            "baseline_dead_ci95_hi": base_hi,
            "mitigated_mean_death": self.mean_mitigated_death,
            "mitigated_dead_frac": self.mitigated_dead / self.trials,
            "mitigated_dead_ci95_lo": mit_lo,
            "mitigated_dead_ci95_hi": mit_hi,
            "mean_first_remap": (self.mean_first_remap
                                 if self.mean_first_remap is not None
                                 else float("nan")),
            "mean_recompiles": sum(self.recompiles) / self.trials,
            "extension_factor": self.extension_factor,
        }


def _baseline_death(program, state: _WearState, horizon: int) -> int | None:
    """First execution at which an unmitigated program cell wears out.

    Without mitigation every epoch writes the same cells the same number of
    times, so the first death is a closed form per cell — no epoch loop.
    """
    counts = static_write_counts(program.instructions)
    death = None
    for cell, count in counts.items():
        if count <= 0:
            continue
        epoch = math.ceil(state.limit(cell) / count)
        if death is None or epoch < death:
            death = epoch
    if death is None or death > horizon:
        return None
    return death


def _validate_once(program, dag: DataFlowGraph, lanes: int, seed: int,
                   trial: int, engine: str = "auto") -> bool:
    """One verified functional execution against the reference semantics.

    Runs without a fault RNG: the point is that the recompiled (and
    possibly rotated) program is deterministically correct on the worn
    arrays — stuck cells honored, no placement on the dead ones — not to
    re-measure the transient sensing-fault rate the Monte-Carlo campaign
    already covers.
    """
    rng = random.Random((seed * _MIX_A + trial * _MIX_B + 17) & _MASK64)
    inputs = {operand.name: rng.getrandbits(lanes)
              for operand in dag.inputs()}
    expected = evaluate(dag, inputs, lanes)
    try:
        actual = program.execute(inputs, lanes=lanes, verify_writes=True,
                                 engine=engine)
    except SimulationError:
        return False
    return actual == expected


def run_lifetime(dag: DataFlowGraph, target: TargetSpec,
                 config: CompilerConfig | None = None, *,
                 trials: int = 25, seed: int = 0,
                 endurance: float = 150.0, endurance_spread: float = 0.15,
                 wear_leveling: bool = True, rotation_stride: int = 1,
                 horizon: int = 1_000_000,
                 fault_map: FaultMap | None = None,
                 validate: bool = False, lanes: int = 16,
                 engine: str = "auto",
                 checkpoint=None) -> LifetimeResult:
    """Run a seeded lifetime campaign (wear → remap → recompile → death).

    Each trial ages the arrays twice on identical per-cell endurance draws:
    once unmitigated (death = first worn-out program cell) and once with
    the full ladder (wear-leveling rotation per execution epoch when
    ``wear_leveling`` is on, dead cells merged into a growing fault map,
    fault-aware recompiles, death = :class:`repro.errors.CapacityError`).
    Trials are censored at ``horizon`` executions.

    ``fault_map`` seeds both agings with pre-existing (manufacturing)
    faults.  ``validate`` additionally executes every recompiled program
    once with verify-after-write against the reference semantics; any
    mismatch is counted in ``validation_failures``.  ``engine`` selects
    the execution backend used by those validation runs (``"auto"``
    keeps the interpreted reference, since they verify writes).

    ``checkpoint`` names a journal file making the run resumable: every
    finished trial's outcome is appended atomically, and re-running the
    same invocation skips journaled trials — each trial's wear draws
    depend only on ``(seed, trial)``, so the resumed result is
    bit-identical to an uninterrupted run.  A journal from a different
    run raises :class:`~repro.errors.CheckpointError`.
    """
    validate_engine(engine)
    if trials < 1:
        raise SimulationError(f"trial count must be positive, got {trials}")
    if horizon < 1:
        raise SimulationError(f"horizon must be positive, got {horizon}")
    if endurance <= 0:
        raise SimulationError(f"endurance must be positive, got {endurance}")
    if wear_leveling and rotation_stride < 1:
        raise SimulationError(
            f"rotation stride must be positive, got {rotation_stride}")
    config = config or CompilerConfig()
    rows = target.rows

    initial = SherlockCompiler(target, config,
                               fault_map=fault_map).compile(dag)
    if initial.stages is not None and wear_leveling:
        # staged programs cannot rotate (see repro.sim.wearlevel); age them
        # at offset 0 so the campaign still measures remap/recompile gains
        wear_leveling = False

    journal = None
    journaled: dict[int, dict] = {}
    if checkpoint is not None:
        from repro.reliability.checkpoint import (
            CheckpointJournal,
            program_digest,
        )

        # identity uses the *effective* wear_leveling (after the staged
        # adjustment above) so it matches however the run is re-invoked
        identity = {"program": program_digest(initial), "trials": trials,
                    "seed": seed, "endurance": endurance,
                    "endurance_spread": endurance_spread,
                    "wear_leveling": wear_leveling,
                    "rotation_stride": rotation_stride, "horizon": horizon,
                    "validate": validate, "lanes": lanes, "engine": engine}
        journal = CheckpointJournal(checkpoint, "lifetime", identity)
        journaled = {record["trial"]: record for record in journal.records}

    baseline_deaths: list[int | None] = []
    mitigated_deaths: list[int | None] = []
    first_remaps: list[int | None] = []
    recompile_counts: list[int] = []
    validation_failures = 0

    for trial in range(trials):
        if trial in journaled:
            record = journaled[trial]
            baseline_deaths.append(record["baseline"])
            mitigated_deaths.append(record["mitigated"])
            first_remaps.append(record["first_remap"])
            recompile_counts.append(record["recompiles"])
            validation_failures += record["validation_failures"]
            continue
        trial_validation_failures_before = validation_failures
        state = _WearState(seed, trial, endurance, endurance_spread)
        baseline_deaths.append(_baseline_death(initial, state, horizon))

        # mitigated aging shares the same endurance draws via `state`
        fm = fault_map.copy() if fault_map is not None else FaultMap()
        program = initial
        offsets, shifted, period_counts = _orbit_counts(
            program, rows, rotation_stride, wear_leveling, fm)
        period = len(offsets)
        epoch = 0
        death: int | None = None
        first_remap: int | None = None
        recompiles = 0
        while epoch < horizon:
            # jump whole rotation periods while provably death-free
            per_epoch = {c: v / period for c, v in period_counts.items()}
            safe = state.safe_epochs(per_epoch) // period
            if safe > 0:
                jump = min(safe, max(0, (horizon - epoch) // period))
                if jump > 0:
                    state.add(period_counts, times=jump)
                    epoch += jump * period
                    if epoch >= horizon:
                        break
            # step one epoch at a time until a death event (≤ one period,
            # modulo the conservativeness of the safe-epoch bound)
            counts = shifted[offsets[epoch % period]]
            state.add(counts)
            epoch += 1
            dead = state.newly_dead(counts, fm)
            if not dead:
                continue
            discovered = FaultMap()
            for cell in dead:
                discovered.mark_dead(*cell)
            fm.merge(discovered)
            if first_remap is None:
                first_remap = epoch
            try:
                program = SherlockCompiler(target, config,
                                           fault_map=fm).compile(dag)
            except MappingError:
                death = epoch
                break
            recompiles += 1
            offsets, shifted, period_counts = _orbit_counts(
                program, rows, rotation_stride,
                wear_leveling and program.stages is None, fm)
            period = len(offsets)
            if validate:
                if program.stages is None and wear_leveling:
                    probe = rotate_program(program, offsets[epoch % period])
                    ok = _validate_once(probe, dag, lanes, seed, trial,
                                        engine)
                else:
                    ok = _validate_once(program, dag, lanes, seed, trial,
                                        engine)
                if not ok:
                    validation_failures += 1
        mitigated_deaths.append(death)
        first_remaps.append(first_remap)
        recompile_counts.append(recompiles)
        if journal is not None:
            journal.append({
                "trial": trial,
                "baseline": baseline_deaths[-1],
                "mitigated": death,
                "first_remap": first_remap,
                "recompiles": recompiles,
                "validation_failures":
                    validation_failures - trial_validation_failures_before})

    return LifetimeResult(
        program_name=dag.name, technology=target.technology.name,
        trials=trials, seed=seed, endurance=endurance,
        endurance_spread=endurance_spread, horizon=horizon,
        wear_leveling=wear_leveling, rotation_stride=rotation_stride,
        baseline_deaths=tuple(baseline_deaths),
        mitigated_deaths=tuple(mitigated_deaths),
        first_remaps=tuple(first_remaps),
        recompiles=tuple(recompile_counts),
        validation_failures=validation_failures)
