"""Monte-Carlo fault-injection campaigns over compiled programs.

The analytic reliability model (:mod:`repro.devices.failure`) predicts how
often sensing decisions fail; this module *measures* it.  A campaign runs a
compiled program for N seeded trials on fault-injecting
:class:`repro.sim.executor.ArrayMachine` instances, compares every trial's
outputs against the reference DAG evaluation (:func:`repro.dfg.evaluate`),
and reports the empirical failure rate with a Wilson 95% confidence
interval next to the analytic prediction — the model-validation experiment
the paper implies but never runs.

Two failure notions are tracked, because they differ systematically:

* **decision failure** — at least one lane flip was injected anywhere in
  the run.  This is what the analytic model predicts
  (:func:`analytic_failure_probability`, the per-column ``P_DF`` values
  compounded over every sensed column and every simulated lane).
* **output failure** — the program's outputs differ from the reference.
  Always at most the decision rate: many flips are logically masked
  (e.g. a flipped lane entering an AND with a 0, or landing in a value
  that is never consumed again).

Campaigns also drive the recovery policies of
:mod:`repro.reliability.recovery`: each trial runs under a fresh policy
instance, and the aggregated :class:`~repro.reliability.recovery.RecoveryStats`
plus priced overhead land in the :class:`CampaignResult`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.arch.isa import ReadInst
from repro.dfg.evaluate import evaluate
from repro.dfg.ops import OpType
from repro.errors import SimulationError
from repro.reliability.recovery import RecoveryStats, get_policy
from repro.sim.metrics import cached_p_df

__all__ = [
    "CampaignResult",
    "analytic_failure_probability",
    "run_campaign",
    "sense_failure_probabilities",
    "wilson_interval",
]

# 2**32-scale odd constants (Fibonacci / Murmur-style) decorrelate the
# per-trial streams derived from one campaign seed
_MIX_A = 0x9E3779B1
_MIX_B = 0x85EBCA77


def _trial_rng(seed: int, trial: int, salt: int) -> random.Random:
    """An independent, reproducible RNG stream for one trial."""
    return random.Random((seed * _MIX_A + trial * _MIX_B + salt)
                         & 0xFFFFFFFFFFFFFFFF)


def wilson_interval(failures: int, trials: int,
                    z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion (default 95%).

    Unlike the normal approximation, the Wilson interval stays inside
    ``[0, 1]`` and behaves at the extremes (0 or ``trials`` failures) —
    exactly where reliability campaigns live.
    """
    if trials < 1:
        raise SimulationError(f"trial count must be positive, got {trials}")
    if not 0 <= failures <= trials:
        raise SimulationError(
            f"failure count {failures} outside [0, {trials}]")
    phat = failures / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (phat + z2 / (2 * trials)) / denom
    half = z * math.sqrt(phat * (1 - phat) / trials
                         + z2 / (4 * trials * trials)) / denom
    return (max(0.0, center - half), min(1.0, center + half))


def sense_failure_probabilities(program) -> list[float]:
    """Per-column decision-failure probability of every sense in the trace.

    This mirrors exactly what the executor's fault injector applies: one
    Bernoulli(``P_DF``) draw per lane per sensed column, including plain
    single-row reads (sensed at the tiny ``P_DF(NOT, 1)``), not only CIM
    column ops.
    """
    tech = program.target.technology
    probabilities: list[float] = []
    for inst in program.instructions:
        if not isinstance(inst, ReadInst):
            continue
        if inst.ops is None:
            p = cached_p_df(tech, OpType.NOT, 1)
            probabilities.extend([p] * len(inst.cols))
        else:
            k = len(inst.rows)
            probabilities.extend(cached_p_df(tech, op, k) for op in inst.ops)
    return probabilities


def analytic_failure_probability(program, lanes: int = 64) -> float:
    """P(at least one lane flip in one run) at the simulated lane count.

    Each lane of each sensed column is an independent sensing decision, so
    the no-failure probability is ``prod(1 - p_i) ** lanes`` — the Sec. 4.2
    ``P_app`` composition evaluated at the machine's lane count (the paper
    quotes it per column op; a campaign observes all lanes at once).
    """
    log_ok = 0.0
    for p in sense_failure_probabilities(program):
        if p >= 1.0:
            return 1.0
        log_ok += math.log1p(-p)
    return -math.expm1(lanes * log_ok)


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of one fault-injection campaign."""

    program_name: str
    policy: str
    trials: int
    lanes: int
    seed: int
    #: trials in which at least one lane flip was injected
    decision_failures: int
    #: trials whose final outputs differed from the reference evaluation
    output_failures: int
    #: model prediction for the decision-failure rate (lane-compounded)
    analytic_p_app: float
    #: total lane flips injected across all trials
    injected_faults: int
    #: recovery work aggregated over all trials
    stats: RecoveryStats
    #: single-run latency of the base schedule, for overhead ratios
    base_latency_cycles: int
    #: single-run energy of the base schedule, for overhead ratios
    base_energy_pj: float

    @property
    def decision_failure_rate(self) -> float:
        """Fraction of trials with at least one injected flip."""
        return self.decision_failures / self.trials

    @property
    def output_failure_rate(self) -> float:
        """Fraction of trials ending with wrong outputs."""
        return self.output_failures / self.trials

    @property
    def decision_wilson(self) -> tuple[float, float]:
        """95% Wilson interval around the decision-failure rate."""
        return wilson_interval(self.decision_failures, self.trials)

    @property
    def output_wilson(self) -> tuple[float, float]:
        """95% Wilson interval around the output-failure rate."""
        return wilson_interval(self.output_failures, self.trials)

    @property
    def analytic_within_interval(self) -> bool:
        """Whether the analytic prediction sits in the decision interval."""
        lo, hi = self.decision_wilson
        return lo <= self.analytic_p_app <= hi

    @property
    def mean_overhead_latency_cycles(self) -> float:
        """Average per-trial recovery latency overhead, in cycles."""
        return self.stats.overhead_latency_cycles / self.trials

    @property
    def mean_overhead_energy_pj(self) -> float:
        """Average per-trial recovery energy overhead, in picojoules."""
        return self.stats.overhead_energy_pj / self.trials

    @property
    def latency_overhead_frac(self) -> float:
        """Mean recovery latency overhead relative to the base schedule."""
        if self.base_latency_cycles == 0:
            return 0.0
        return self.mean_overhead_latency_cycles / self.base_latency_cycles

    @property
    def energy_overhead_frac(self) -> float:
        """Mean recovery energy overhead relative to the base schedule."""
        if self.base_energy_pj == 0:
            return 0.0
        return self.mean_overhead_energy_pj / self.base_energy_pj

    def summary(self) -> dict[str, float]:
        """Flat dictionary for table printing."""
        dec_lo, dec_hi = self.decision_wilson
        out_lo, out_hi = self.output_wilson
        return {
            "trials": self.trials,
            "decision_rate": self.decision_failure_rate,
            "decision_ci95_lo": dec_lo,
            "decision_ci95_hi": dec_hi,
            "analytic_p_app": self.analytic_p_app,
            "output_rate": self.output_failure_rate,
            "output_ci95_lo": out_lo,
            "output_ci95_hi": out_hi,
            "overhead_latency_frac": self.latency_overhead_frac,
            "overhead_energy_frac": self.energy_overhead_frac,
        }


def run_campaign(program, trials: int = 1000, seed: int = 0,
                 policy: str = "none", lanes: int = 64,
                 policy_kwargs: dict | None = None,
                 inputs: dict[str, int] | None = None) -> CampaignResult:
    """Run a seeded Monte-Carlo fault-injection campaign.

    Every trial gets decorrelated input and fault RNG streams derived from
    ``seed``, fresh random lane-bitmask inputs (unless fixed ``inputs`` are
    given), and a fresh instance of the named recovery policy; the same
    ``(seed, trials)`` pair replays bit-identically, so policies can be
    compared on the *same* fault sequences.
    """
    if trials < 1:
        raise SimulationError(f"trial count must be positive, got {trials}")
    kwargs = dict(policy_kwargs or {})
    get_policy(policy, **kwargs)  # fail fast on bad name / kwargs
    input_names = [operand.name for operand in program.source_dag.inputs()]
    aggregate = RecoveryStats()
    decision_failures = 0
    output_failures = 0
    injected = 0
    for trial in range(trials):
        fault_rng = _trial_rng(seed, trial, 2)
        if inputs is None:
            input_rng = _trial_rng(seed, trial, 1)
            trial_inputs = {name: input_rng.getrandbits(lanes)
                            for name in input_names}
        else:
            trial_inputs = inputs
        expected = evaluate(program.source_dag, trial_inputs, lanes)
        trial_policy = get_policy(policy, **kwargs)
        outputs = trial_policy.execute(program, trial_inputs, lanes,
                                       fault_rng, expected=expected)
        faults = (trial_policy.machine.injected_faults
                  if trial_policy.machine is not None else 0)
        injected += faults
        if faults:
            decision_failures += 1
        if outputs != expected:
            output_failures += 1
        aggregate.merge(trial_policy.stats)
    metrics = program.metrics
    return CampaignResult(
        program_name=program.source_dag.name,
        policy=policy, trials=trials, lanes=lanes, seed=seed,
        decision_failures=decision_failures,
        output_failures=output_failures,
        analytic_p_app=analytic_failure_probability(program, lanes),
        injected_faults=injected, stats=aggregate,
        base_latency_cycles=metrics.latency_cycles,
        base_energy_pj=metrics.energy_pj)
