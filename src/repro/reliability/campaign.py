"""Monte-Carlo fault-injection campaigns over compiled programs.

The analytic reliability model (:mod:`repro.devices.failure`) predicts how
often sensing decisions fail; this module *measures* it.  A campaign runs a
compiled program for N seeded trials on fault-injecting
:class:`repro.sim.executor.ArrayMachine` instances, compares every trial's
outputs against the reference DAG evaluation (:func:`repro.dfg.evaluate`),
and reports the empirical failure rate with a Wilson 95% confidence
interval next to the analytic prediction — the model-validation experiment
the paper implies but never runs.

Two failure notions are tracked, because they differ systematically:

* **decision failure** — at least one lane flip was injected anywhere in
  the run.  This is what the analytic model predicts
  (:func:`analytic_failure_probability`, the per-column ``P_DF`` values
  compounded over every sensed column and every simulated lane).
* **output failure** — the program's outputs differ from the reference.
  Always at most the decision rate: many flips are logically masked
  (e.g. a flipped lane entering an AND with a 0, or landing in a value
  that is never consumed again).

Campaigns also drive the recovery policies of
:mod:`repro.reliability.recovery`: each trial runs under a fresh policy
instance, and the aggregated :class:`~repro.reliability.recovery.RecoveryStats`
plus priced overhead land in the :class:`CampaignResult`.

Statistically meaningful campaigns (>= 1000 trials per policy and workload)
are embarrassingly parallel: every trial derives its RNG streams purely from
``(seed, trial_index)``, so :func:`run_campaign` can shard the trial range
across a :class:`concurrent.futures.ProcessPoolExecutor` (``workers=N``)
and still produce **bit-identical** failure counts to a serial run on the
same master seed.  Shards that time out or die are re-run in-process under
the shared bounded-retry policy of :mod:`repro.util.retry`, and any
platform/pickling failure degrades gracefully to the serial path.
"""

from __future__ import annotations

import dataclasses
import math
import random
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.arch.isa import ReadInst
from repro.dfg.evaluate import evaluate
from repro.dfg.ops import OpType
from repro.errors import SimulationError
from repro.reliability.checkpoint import CheckpointJournal, program_digest
from repro.reliability.recovery import RecoveryStats, get_policy
from repro.sim.metrics import cached_p_df
from repro.sim.vectorized import validate_engine
from repro.util.retry import RetryPolicy, retry_call

__all__ = [
    "CampaignResult",
    "ShardOutcome",
    "analytic_failure_probability",
    "run_campaign",
    "run_trial_block",
    "sense_failure_probabilities",
    "shard_ranges",
    "wilson_interval",
]

# 2**32-scale odd constants (Fibonacci / Murmur-style) decorrelate the
# per-trial streams derived from one campaign seed
_MIX_A = 0x9E3779B1
_MIX_B = 0x85EBCA77

#: recovery schedule for shards that failed or timed out in the pool: the
#: in-process re-run is itself retried (bounded, jittered backoff) on
#: transient OS-level failures; everything else propagates immediately.
#: ``run_trial_block`` derives all randomness from ``(seed, trial range)``,
#: so however many attempts recovery takes, the merged counters stay
#: bit-identical to a serial run.  The jitter seed is pinned so the retry
#: schedule itself replays deterministically.
_SHARD_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.01,
                           max_delay_s=0.25,
                           retryable=(OSError, MemoryError), seed=0)


def _trial_rng(seed: int, trial: int, salt: int) -> random.Random:
    """An independent, reproducible RNG stream for one trial."""
    return random.Random((seed * _MIX_A + trial * _MIX_B + salt)
                         & 0xFFFFFFFFFFFFFFFF)


def wilson_interval(failures: int, trials: int,
                    z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion (default 95%).

    Unlike the normal approximation, the Wilson interval stays inside
    ``[0, 1]`` and behaves at the extremes (0 or ``trials`` failures) —
    exactly where reliability campaigns live.
    """
    if trials < 1:
        raise SimulationError(f"trial count must be positive, got {trials}")
    if not 0 <= failures <= trials:
        raise SimulationError(
            f"failure count {failures} outside [0, {trials}]")
    phat = failures / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (phat + z2 / (2 * trials)) / denom
    half = z * math.sqrt(phat * (1 - phat) / trials
                         + z2 / (4 * trials * trials)) / denom
    return (max(0.0, center - half), min(1.0, center + half))


def sense_failure_probabilities(program) -> list[float]:
    """Per-column decision-failure probability of every sense in the trace.

    This mirrors exactly what the executor's fault injector applies: one
    Bernoulli(``P_DF``) draw per lane per sensed column, including plain
    single-row reads (sensed at the tiny ``P_DF(NOT, 1)``), not only CIM
    column ops.
    """
    tech = program.target.technology
    probabilities: list[float] = []
    for inst in program.instructions:
        if not isinstance(inst, ReadInst):
            continue
        if inst.ops is None:
            p = cached_p_df(tech, OpType.NOT, 1)
            probabilities.extend([p] * len(inst.cols))
        else:
            k = len(inst.rows)
            probabilities.extend(cached_p_df(tech, op, k) for op in inst.ops)
    return probabilities


def analytic_failure_probability(program, lanes: int = 64) -> float:
    """P(at least one lane flip in one run) at the simulated lane count.

    Each lane of each sensed column is an independent sensing decision, so
    the no-failure probability is ``prod(1 - p_i) ** lanes`` — the Sec. 4.2
    ``P_app`` composition evaluated at the machine's lane count (the paper
    quotes it per column op; a campaign observes all lanes at once).
    """
    log_ok = 0.0
    for p in sense_failure_probabilities(program):
        if p >= 1.0:
            return 1.0
        log_ok += math.log1p(-p)
    return -math.expm1(lanes * log_ok)


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of one fault-injection campaign."""

    program_name: str
    policy: str
    trials: int
    lanes: int
    seed: int
    #: trials in which at least one lane flip was injected
    decision_failures: int
    #: trials whose final outputs differed from the reference evaluation
    output_failures: int
    #: model prediction for the decision-failure rate (lane-compounded)
    analytic_p_app: float
    #: total lane flips injected across all trials
    injected_faults: int
    #: recovery work aggregated over all trials
    stats: RecoveryStats
    #: single-run latency of the base schedule, for overhead ratios
    base_latency_cycles: int
    #: single-run energy of the base schedule, for overhead ratios
    base_energy_pj: float

    @property
    def decision_failure_rate(self) -> float:
        """Fraction of trials with at least one injected flip."""
        return self.decision_failures / self.trials

    @property
    def output_failure_rate(self) -> float:
        """Fraction of trials ending with wrong outputs."""
        return self.output_failures / self.trials

    @property
    def decision_wilson(self) -> tuple[float, float]:
        """95% Wilson interval around the decision-failure rate."""
        return wilson_interval(self.decision_failures, self.trials)

    @property
    def output_wilson(self) -> tuple[float, float]:
        """95% Wilson interval around the output-failure rate."""
        return wilson_interval(self.output_failures, self.trials)

    @property
    def analytic_within_interval(self) -> bool:
        """Whether the analytic prediction sits in the decision interval."""
        lo, hi = self.decision_wilson
        return lo <= self.analytic_p_app <= hi

    @property
    def mean_overhead_latency_cycles(self) -> float:
        """Average per-trial recovery latency overhead, in cycles."""
        return self.stats.overhead_latency_cycles / self.trials

    @property
    def mean_overhead_energy_pj(self) -> float:
        """Average per-trial recovery energy overhead, in picojoules."""
        return self.stats.overhead_energy_pj / self.trials

    @property
    def latency_overhead_frac(self) -> float:
        """Mean recovery latency overhead relative to the base schedule."""
        if self.base_latency_cycles == 0:
            return 0.0
        return self.mean_overhead_latency_cycles / self.base_latency_cycles

    @property
    def energy_overhead_frac(self) -> float:
        """Mean recovery energy overhead relative to the base schedule."""
        if self.base_energy_pj == 0:
            return 0.0
        return self.mean_overhead_energy_pj / self.base_energy_pj

    def summary(self) -> dict[str, float]:
        """Flat dictionary for table printing."""
        dec_lo, dec_hi = self.decision_wilson
        out_lo, out_hi = self.output_wilson
        return {
            "trials": self.trials,
            "decision_rate": self.decision_failure_rate,
            "decision_ci95_lo": dec_lo,
            "decision_ci95_hi": dec_hi,
            "analytic_p_app": self.analytic_p_app,
            "output_rate": self.output_failure_rate,
            "output_ci95_lo": out_lo,
            "output_ci95_hi": out_hi,
            "overhead_latency_frac": self.latency_overhead_frac,
            "overhead_energy_frac": self.energy_overhead_frac,
        }


@dataclass
class ShardOutcome:
    """Additive counters of one contiguous block of campaign trials.

    Shard outcomes are pure sums, so merging them in any order reproduces
    exactly the counters a serial run over the same trial indices would
    accumulate — the invariant the parallel campaign mode relies on.
    """

    #: trials in this block with at least one injected lane flip
    decision_failures: int = 0
    #: trials in this block whose outputs differed from the reference
    output_failures: int = 0
    #: total lane flips injected across the block
    injected_faults: int = 0
    #: recovery work aggregated over the block's trials
    stats: RecoveryStats = field(default_factory=RecoveryStats)

    def merge(self, other: "ShardOutcome") -> None:
        """Fold another shard's counters into this one."""
        self.decision_failures += other.decision_failures
        self.output_failures += other.output_failures
        self.injected_faults += other.injected_faults
        self.stats.merge(other.stats)


def _vector_trial_block(program, first: int, count: int, seed: int,
                        lanes: int,
                        inputs: dict[str, int] | None) -> ShardOutcome:
    """Batched (vectorized-engine) shard for the no-policy campaign path.

    Trial inputs are re-derived from the exact per-trial streams the
    interpreted path uses; fault draws come from per-trial Philox streams
    keyed by the same ``(seed, trial)`` mix, so the flip *distribution*
    matches while remaining independent of sharding and chunking.
    """
    from repro.sim.vectorized import campaign_trials

    input_names = [operand.name for operand in program.source_dag.inputs()]
    trial_range = range(first, first + count)
    if inputs is None:
        sets = []
        for trial in trial_range:
            input_rng = _trial_rng(seed, trial, 1)
            sets.append({name: input_rng.getrandbits(lanes)
                         for name in input_names})
    else:
        sets = [inputs] * count
    keys = [(seed * _MIX_A + trial * _MIX_B + 2) & 0xFFFFFFFFFFFFFFFF
            for trial in trial_range]
    flips, mismatch = campaign_trials(program, sets, keys, lanes)
    outcome = ShardOutcome()
    outcome.injected_faults = int(flips.sum())
    outcome.decision_failures = int((flips > 0).sum())
    outcome.output_failures = int(mismatch.sum())
    return outcome


def run_trial_block(program, first: int, count: int, seed: int,
                    policy: str, lanes: int,
                    policy_kwargs: dict | None = None,
                    inputs: dict[str, int] | None = None,
                    engine: str = "interpreted") -> ShardOutcome:
    """Run campaign trials ``[first, first + count)`` — the shard unit.

    This is a module-level function (not a closure) so a
    :class:`~concurrent.futures.ProcessPoolExecutor` can pickle it to
    worker processes.  Each trial re-derives its input and fault RNG
    streams purely from ``(seed, trial_index)``, so the block's counters
    are independent of how the trial range was partitioned.

    ``engine="vectorized"`` batches the whole block through the
    bit-packed backend — only for the bare ``"none"`` policy (recovery
    policies drive the interpreted machine directly); other policies
    fall back to the interpreted loop.
    """
    if engine == "vectorized" and policy == "none":
        return _vector_trial_block(program, first, count, seed, lanes,
                                   inputs)
    kwargs = dict(policy_kwargs or {})
    input_names = [operand.name for operand in program.source_dag.inputs()]
    outcome = ShardOutcome()
    for trial in range(first, first + count):
        fault_rng = _trial_rng(seed, trial, 2)
        if inputs is None:
            input_rng = _trial_rng(seed, trial, 1)
            trial_inputs = {name: input_rng.getrandbits(lanes)
                            for name in input_names}
        else:
            trial_inputs = inputs
        expected = evaluate(program.source_dag, trial_inputs, lanes)
        trial_policy = get_policy(policy, **kwargs)
        outputs = trial_policy.execute(program, trial_inputs, lanes,
                                       fault_rng, expected=expected)
        faults = (trial_policy.machine.injected_faults
                  if trial_policy.machine is not None else 0)
        outcome.injected_faults += faults
        if faults:
            outcome.decision_failures += 1
        if outputs != expected:
            outcome.output_failures += 1
        outcome.stats.merge(trial_policy.stats)
    return outcome


#: shards per worker: small enough to keep per-shard pickling overhead low,
#: large enough that an unlucky slow shard cannot serialize the whole pool
_SHARDS_PER_WORKER = 4


def shard_ranges(trials: int, workers: int) -> list[tuple[int, int]]:
    """Partition ``trials`` into contiguous ``(first, count)`` blocks.

    Produces up to ``_SHARDS_PER_WORKER`` blocks per worker (never more
    blocks than trials), sized within one trial of each other.
    """
    if trials < 1:
        raise SimulationError(f"trial count must be positive, got {trials}")
    if workers < 1:
        raise SimulationError(f"worker count must be positive, got {workers}")
    shards = min(trials, workers * _SHARDS_PER_WORKER)
    base, extra = divmod(trials, shards)
    ranges: list[tuple[int, int]] = []
    first = 0
    for index in range(shards):
        count = base + (1 if index < extra else 0)
        ranges.append((first, count))
        first += count
    return ranges


def _parallel_outcomes(program, ranges: list[tuple[int, int]], seed: int,
                       policy: str, lanes: int, kwargs: dict,
                       inputs: dict[str, int] | None, workers: int,
                       shard_timeout_s: float | None,
                       engine: str = "interpreted",
                       ) -> list[ShardOutcome | None] | None:
    """Fan the shard blocks out across a process pool.

    Returns one outcome slot per shard (``None`` where the shard failed or
    timed out — the caller retries those serially), or ``None`` when the
    pool itself could not be used (pickling or platform failure), in which
    case the caller falls back to the fully serial path.
    """
    outcomes: list[ShardOutcome | None] = [None] * len(ranges)
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, NotImplementedError) as error:
        warnings.warn(f"campaign worker pool unavailable ({error}); "
                      "running serially", RuntimeWarning, stacklevel=3)
        return None
    hung = False
    try:
        try:
            futures = [pool.submit(run_trial_block, program, first, count,
                                   seed, policy, lanes, kwargs, inputs,
                                   engine)
                       for first, count in ranges]
        except Exception as error:  # unpicklable program/policy kwargs
            warnings.warn(f"campaign shard submission failed ({error}); "
                          "running serially", RuntimeWarning, stacklevel=3)
            return None
        for index, future in enumerate(futures):
            try:
                outcomes[index] = future.result(timeout=shard_timeout_s)
            except TimeoutError:
                hung = True  # worker may still be running: abandon the pool
            except Exception:
                pass  # dead worker / unpicklable result: retried serially
    finally:
        pool.shutdown(wait=not hung, cancel_futures=True)
    return outcomes


def _outcome_to_record(first: int, count: int,
                       outcome: ShardOutcome) -> dict:
    """One journaled shard block (JSON-safe, loss-free for resume)."""
    return {"first": first, "count": count,
            "decision_failures": outcome.decision_failures,
            "output_failures": outcome.output_failures,
            "injected_faults": outcome.injected_faults,
            "stats": dataclasses.asdict(outcome.stats)}


def _record_to_outcome(record: dict) -> ShardOutcome:
    return ShardOutcome(
        decision_failures=record["decision_failures"],
        output_failures=record["output_failures"],
        injected_faults=record["injected_faults"],
        stats=RecoveryStats(**record["stats"]))


def _campaign_identity(program, trials: int, seed: int, policy: str,
                       lanes: int, engine: str, kwargs: dict,
                       inputs: dict[str, int] | None) -> dict:
    """Everything that must match for journaled blocks to be mergeable."""
    return {"program": program_digest(program), "trials": trials,
            "seed": seed, "policy": policy, "lanes": lanes,
            "engine": engine,
            "policy_kwargs": repr(sorted(kwargs.items())),
            "inputs": repr(sorted(inputs.items())) if inputs else None}


def _checkpointed_outcome(program, trials, seed, policy, lanes, kwargs,
                          inputs, workers, shard_timeout_s, engine,
                          journal: CheckpointJournal) -> ShardOutcome:
    """The resumable campaign body: journaled blocks skip, gaps re-run.

    Checkpointed campaigns always run over the canonical block partition
    ``shard_ranges(trials, workers)`` — even serially — so that an
    interrupted-and-resumed run merges its counters in exactly the block
    order an uninterrupted run uses (float accumulators included).  A
    journal whose blocks do not align with the canonical partition
    (resumed with a different ``workers``) still merges exactly: the gaps
    between journaled blocks are re-run as their own blocks, and only the
    float addition *grouping* can differ from an uninterrupted run.
    """
    from repro.reliability.checkpoint import remaining_ranges

    done = {(record["first"], record["count"]): _record_to_outcome(record)
            for record in journal.records}
    canonical = shard_ranges(trials, workers)
    if set(done) <= set(canonical):
        blocks = canonical
    else:
        blocks = sorted(set(done)
                        | set(remaining_ranges(trials, sorted(done))))
    pending = [block for block in blocks if block not in done]
    fresh: dict[tuple[int, int], ShardOutcome] = {}
    slots: list[ShardOutcome | None] | None = None
    if pending and workers > 1 and trials > 1:
        slots = _parallel_outcomes(program, pending, seed, policy, lanes,
                                   kwargs, inputs, workers,
                                   shard_timeout_s, engine)
    for index, (first, count) in enumerate(pending):
        outcome = slots[index] if slots is not None else None
        if outcome is None:
            outcome = retry_call(
                lambda first=first, count=count: run_trial_block(
                    program, first, count, seed, policy, lanes, kwargs,
                    inputs, engine),
                policy=_SHARD_RETRY,
                label=f"campaign shard [{first}, {first + count})")
        fresh[(first, count)] = outcome
        journal.append(_outcome_to_record(first, count, outcome))
    aggregate = ShardOutcome()
    for block in blocks:
        aggregate.merge(done.get(block) or fresh[block])
    return aggregate


def run_campaign(program, trials: int = 1000, seed: int = 0,
                 policy: str = "none", lanes: int = 64,
                 policy_kwargs: dict | None = None,
                 inputs: dict[str, int] | None = None,
                 workers: int = 1,
                 shard_timeout_s: float | None = None,
                 engine: str = "interpreted",
                 checkpoint=None) -> CampaignResult:
    """Run a seeded Monte-Carlo fault-injection campaign.

    Every trial gets decorrelated input and fault RNG streams derived from
    ``seed``, fresh random lane-bitmask inputs (unless fixed ``inputs`` are
    given), and a fresh instance of the named recovery policy; the same
    ``(seed, trials)`` pair replays bit-identically, so policies can be
    compared on the *same* fault sequences.

    ``workers > 1`` shards the trial range across a process pool.  Because
    per-trial RNG streams depend only on ``(seed, trial_index)``, the
    parallel result is bit-identical to the serial one.  Each shard may be
    bounded by ``shard_timeout_s``; failed or timed-out shards are re-run
    in-process under the bounded-retry policy of :mod:`repro.util.retry`
    (transient OS failures backed off and re-attempted, anything else
    propagated), and if the pool cannot be used at all (e.g. an unpicklable
    custom policy) the campaign silently degrades to serial execution with
    a :class:`RuntimeWarning`.

    ``engine="vectorized"`` batches trials through the bit-packed backend
    for the bare ``"none"`` policy (an order of magnitude faster; flip
    counts are drawn from equivalent but distinct RNG streams, so they
    are statistically — not bit — identical to the interpreted engine).
    Recovery policies always run interpreted.  The default (and
    ``"auto"``) stays interpreted so existing campaign streams replay
    bit-identically.

    ``checkpoint`` names a journal file making the campaign resumable:
    each completed trial block is appended atomically, and re-running the
    same invocation against an existing journal skips the journaled
    blocks — bit-identical to an uninterrupted checkpointed run on the
    same master seed.  A journal from a *different* run (program, trials,
    seed, policy, lanes, engine, inputs) raises
    :class:`~repro.errors.CheckpointError`.  The finished journal is left
    on disk (re-running is then a no-op merge of journaled blocks).
    """
    engine = validate_engine(engine)
    if engine == "auto":
        engine = "interpreted"
    if trials < 1:
        raise SimulationError(f"trial count must be positive, got {trials}")
    if workers < 1:
        raise SimulationError(f"worker count must be positive, got {workers}")
    kwargs = dict(policy_kwargs or {})
    get_policy(policy, **kwargs)  # fail fast on bad name / kwargs
    if checkpoint is not None:
        journal = CheckpointJournal(
            checkpoint, "campaign",
            _campaign_identity(program, trials, seed, policy, lanes,
                               engine, kwargs, inputs))
        aggregate = _checkpointed_outcome(
            program, trials, seed, policy, lanes, kwargs, inputs, workers,
            shard_timeout_s, engine, journal)
        metrics = program.metrics
        return CampaignResult(
            program_name=program.source_dag.name,
            policy=policy, trials=trials, lanes=lanes, seed=seed,
            decision_failures=aggregate.decision_failures,
            output_failures=aggregate.output_failures,
            analytic_p_app=analytic_failure_probability(program, lanes),
            injected_faults=aggregate.injected_faults,
            stats=aggregate.stats,
            base_latency_cycles=metrics.latency_cycles,
            base_energy_pj=metrics.energy_pj)
    aggregate = ShardOutcome()
    if workers == 1 or trials == 1:
        aggregate = run_trial_block(program, 0, trials, seed, policy, lanes,
                                    kwargs, inputs, engine)
    else:
        ranges = shard_ranges(trials, workers)
        outcomes = _parallel_outcomes(program, ranges, seed, policy, lanes,
                                      kwargs, inputs, workers,
                                      shard_timeout_s, engine)
        if outcomes is None:
            aggregate = run_trial_block(program, 0, trials, seed, policy,
                                        lanes, kwargs, inputs, engine)
        else:
            for (first, count), outcome in zip(ranges, outcomes):
                if outcome is None:  # pool shard failed: recover in-process
                    outcome = retry_call(
                        lambda first=first, count=count: run_trial_block(
                            program, first, count, seed, policy, lanes,
                            kwargs, inputs, engine),
                        policy=_SHARD_RETRY,
                        label=f"campaign shard [{first}, {first + count})")
                aggregate.merge(outcome)
    metrics = program.metrics
    return CampaignResult(
        program_name=program.source_dag.name,
        policy=policy, trials=trials, lanes=lanes, seed=seed,
        decision_failures=aggregate.decision_failures,
        output_failures=aggregate.output_failures,
        analytic_p_app=analytic_failure_probability(program, lanes),
        injected_faults=aggregate.injected_faults, stats=aggregate.stats,
        base_latency_cycles=metrics.latency_cycles,
        base_energy_pj=metrics.energy_pj)
