"""Application-level reliability: analysis, campaigns, and recovery.

Three layers, matching Sec. 4.2 of the paper and its runtime consequences:
the analytic MRA/latency trade-off sweep (:mod:`repro.reliability.sweep`),
Monte-Carlo fault-injection campaigns that validate the analytic model
against executed programs (:mod:`repro.reliability.campaign`), and the
detect-and-recover execution policies that act on detected failures
(:mod:`repro.reliability.recovery`).  A fourth layer goes beyond transient
faults: :mod:`repro.reliability.lifetime` ages the arrays until cells wear
out for good and measures how far wear-leveling plus fault-aware
recompilation stretch the array's useful life.  Long campaign and
lifetime runs are resumable through the atomic checkpoint journals of
:mod:`repro.reliability.checkpoint` (bit-identical resume on the same
master seed).
"""

from repro.devices.failure import application_failure_probability
from repro.reliability.campaign import (
    CampaignResult,
    ShardOutcome,
    analytic_failure_probability,
    run_campaign,
    run_trial_block,
    sense_failure_probabilities,
    shard_ranges,
    wilson_interval,
)
from repro.reliability.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointJournal,
    program_digest,
    remaining_ranges,
)
from repro.reliability.lifetime import (
    LifetimeResult,
    run_lifetime,
)
from repro.reliability.recovery import (
    POLICIES,
    CheckpointReplay,
    DegradeMra,
    NoRecovery,
    RecoveryOutcome,
    RecoveryPolicy,
    RecoveryStats,
    RereadVote,
    execute_with_recovery,
    get_policy,
    register_policy,
)
from repro.reliability.sweep import (
    DEFAULT_FRACTIONS,
    SweepPoint,
    mra_sweep,
    pareto_front,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "DEFAULT_FRACTIONS",
    "POLICIES",
    "CampaignResult",
    "CheckpointJournal",
    "CheckpointReplay",
    "DegradeMra",
    "LifetimeResult",
    "NoRecovery",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "RecoveryStats",
    "RereadVote",
    "ShardOutcome",
    "SweepPoint",
    "analytic_failure_probability",
    "application_failure_probability",
    "execute_with_recovery",
    "get_policy",
    "mra_sweep",
    "pareto_front",
    "program_digest",
    "register_policy",
    "remaining_ranges",
    "run_campaign",
    "run_lifetime",
    "run_trial_block",
    "sense_failure_probabilities",
    "shard_ranges",
    "wilson_interval",
]
