"""Application-level reliability analysis (Sec. 4.2, Fig. 6)."""

from repro.devices.failure import application_failure_probability
from repro.reliability.sweep import (
    DEFAULT_FRACTIONS,
    SweepPoint,
    mra_sweep,
    pareto_front,
)

__all__ = [
    "DEFAULT_FRACTIONS",
    "SweepPoint",
    "application_failure_probability",
    "mra_sweep",
    "pareto_front",
]
