"""Reliability/performance sweeps (Fig. 6 of the paper).

The sweep knob is the allowed fraction of multi-operand (MRA > 2) ops in
the DAG: merging ops removes instructions (latency drops) but every merged
op senses more rows at once (``P_DF`` grows).  For each budget point we
compile the application and report latency, energy and ``P_app`` — exactly
the axes of Fig. 6.  On technologies with NAND lowering (STT-MRAM) the
XOR/OR ops are rewritten after the merge, matching the Fig. 6b setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.target import TargetSpec
from repro.core.compiler import SherlockCompiler
from repro.core.config import CompilerConfig
from repro.dfg.graph import DataFlowGraph


@dataclass(frozen=True)
class SweepPoint:
    """One point of the Fig. 6 latency/reliability trade-off curve."""

    allowed_fraction: float
    achieved_fraction: float
    latency_us: float
    energy_uj: float
    p_app: float
    instructions: int


DEFAULT_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)


def mra_sweep(dag: DataFlowGraph, target: TargetSpec, mapper: str = "sherlock",
              fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
              mra: int | None = None, cache: bool = True) -> list[SweepPoint]:
    """Compile the DAG at each multi-operand budget and collect metrics.

    ``mra`` defaults to the target's multi-row-activation limit; fraction
    0.0 reproduces the binary-DAG baseline (leftmost Fig. 6 points).

    With ``cache`` (the default) each point consults the process-level
    compile cache, so re-sweeping the same DAG — repeated fractions,
    refinement runs, multi-sweep studies — skips the redundant
    recompiles; pass ``cache=False`` when timing raw compilation.
    """
    mra = mra or target.max_activated_rows
    points = []
    for fraction in fractions:
        config = CompilerConfig(mapper=mapper, mra=mra, mra_fraction=fraction)
        program = SherlockCompiler(target, config, cache=cache).compile(dag)
        metrics = program.metrics
        multi = sum(count for k, count in metrics.mra_histogram.items() if k > 2)
        total = max(1, metrics.cim_column_ops)
        points.append(SweepPoint(
            allowed_fraction=fraction,
            achieved_fraction=multi / total,
            latency_us=metrics.latency_us,
            energy_uj=metrics.energy_uj,
            p_app=metrics.p_app,
            instructions=metrics.instruction_count,
        ))
    return points


def pareto_front(points: list[SweepPoint]) -> list[SweepPoint]:
    """Points not dominated in (latency, P_app) — the useful trade-offs."""
    front = []
    for p in points:
        if not any(q.latency_us <= p.latency_us and q.p_app <= p.p_app
                   and (q.latency_us, q.p_app) != (p.latency_us, p.p_app)
                   for q in points):
            front.append(p)
    return sorted(front, key=lambda p: p.latency_us)
