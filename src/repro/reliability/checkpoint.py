"""Checkpoint/resume journals for long reliability campaigns.

A million-trial campaign or a wear-out lifetime study can run for hours;
a crash (or a preemption) should not throw the completed work away.  This
module journals completed work units — campaign shard blocks, lifetime
trials — to one JSON file, published atomically with the same
write-then-``os.replace`` pattern the artifact cache uses, so the journal
on disk is always a complete, parseable document.

Resume is **bit-identical** by construction: every campaign trial derives
its RNG streams purely from ``(seed, trial_index)``, so re-running only
the missing trial blocks and merging them with the journaled ones in
canonical order reproduces exactly the counters an uninterrupted run
would have produced — including the float energy accumulators, because
:func:`run_campaign` with a checkpoint shards *serial* runs into the same
canonical blocks the parallel path uses (float addition is associative
only in the order it actually happened, so the block boundaries are part
of the contract).

A journal is bound to the run that started it: the ``identity`` document
(program digest, trials, seed, policy, lanes, engine...) is stored in the
file, and resuming with any mismatch raises
:class:`~repro.errors.CheckpointError` rather than silently merging
incompatible counters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import threading

from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointJournal",
    "program_digest",
    "remaining_ranges",
]

#: schema tag every journal carries; any other tag is an incompatible file
CHECKPOINT_SCHEMA = "sherlock-checkpoint/v1"


def program_digest(program) -> str:
    """A stable content digest of a compiled program's identity.

    Mirrors the artifact-cache key ingredients (DAG structural hash,
    target, config, fault-map digest) without importing the serve layer,
    so the reliability runtime stays independent of it.
    """
    from repro.core.serialize import target_to_dict
    from repro.dfg.stats import structural_hash

    hasher = hashlib.sha256()
    hasher.update(structural_hash(program.source_dag).encode())
    hasher.update(json.dumps(target_to_dict(program.target),
                             sort_keys=True).encode())
    hasher.update(json.dumps(dataclasses.asdict(program.config),
                             sort_keys=True).encode())
    digest = program.fault_map.digest() if program.fault_map else None
    hasher.update(f"|faults:{digest}".encode())
    return hasher.hexdigest()


class CheckpointJournal:
    """One resumable run's journal of completed work records.

    Opening a path that already holds a journal *resumes* it: the
    existing records load and new ones append.  Opening a fresh path
    starts an empty journal.  ``kind`` names the run type (``"campaign"``
    or ``"lifetime"``) and ``identity`` pins every parameter that must
    match for old records to be mergeable; a mismatch on either raises
    :class:`CheckpointError` immediately.
    """

    def __init__(self, path: str | pathlib.Path, kind: str,
                 identity: dict) -> None:
        self.path = pathlib.Path(path)
        self.kind = kind
        self.identity = identity
        self._lock = threading.Lock()
        self.records: list[dict] = []
        self.resumed = False
        if self.path.exists():
            self._load()
        else:
            self._save()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"checkpoint {self.path} is unreadable or corrupt: "
                f"{error}") from error
        if not isinstance(document, dict):
            raise CheckpointError(
                f"checkpoint {self.path} is not a JSON object")
        if document.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {self.path} has schema "
                f"{document.get('schema')!r}, expected "
                f"{CHECKPOINT_SCHEMA!r}")
        if document.get("kind") != self.kind:
            raise CheckpointError(
                f"checkpoint {self.path} records a "
                f"{document.get('kind')!r} run, not {self.kind!r}")
        if document.get("identity") != self.identity:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different run "
                f"(program/trials/seed/policy changed); refusing to merge "
                f"its records")
        records = document.get("records")
        if not isinstance(records, list):
            raise CheckpointError(
                f"checkpoint {self.path} has no records list")
        self.records = records
        self.resumed = bool(records)

    def _save(self) -> None:
        document = {"schema": CHECKPOINT_SCHEMA, "kind": self.kind,
                    "identity": self.identity, "records": self.records}
        tmp = self.path.with_name(
            f".{self.path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        tmp.write_text(json.dumps(document, indent=1))
        os.replace(tmp, self.path)

    def append(self, record: dict) -> None:
        """Durably add one completed work record (atomic republish)."""
        with self._lock:
            self.records.append(record)
            self._save()

    def remove(self) -> None:
        """Delete the journal file (the run completed; nothing to resume)."""
        try:
            self.path.unlink()
        except OSError:
            pass


def remaining_ranges(trials: int,
                     done: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """The ``(first, count)`` gaps of ``[0, trials)`` not covered by ``done``.

    Validates that the completed blocks are in-bounds and non-overlapping
    (an overlap means the journal is corrupt or hand-edited — merging it
    would double-count trials).
    """
    spans = sorted((first, first + count) for first, count in done)
    cursor = 0
    gaps: list[tuple[int, int]] = []
    for start, end in spans:
        if start < cursor:
            raise CheckpointError(
                f"checkpoint blocks overlap or exceed bounds near trial "
                f"{start} (cursor {cursor})")
        if end > trials:
            raise CheckpointError(
                f"checkpoint block [{start}, {end}) exceeds the campaign's "
                f"{trials} trials")
        if start > cursor:
            gaps.append((cursor, start - cursor))
        cursor = end
    if cursor < trials:
        gaps.append((cursor, trials - cursor))
    return gaps
