"""Pythonic builder DSL for constructing data-flow graphs.

The C front-end (``repro.frontend``) is the paper's entry point, but for
programmatically generated kernels (bit-sliced AES, ripple-carry adders...)
a direct builder is far more convenient::

    b = DFGBuilder("maj3")
    x, y, z = b.inputs("x", "y", "z")
    b.output("maj", (x & y) | (x & z) | (y & z))
    dag = b.build()
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import OpType
from repro.errors import GraphError


class Wire:
    """Handle to an operand node, overloading the bitwise operators."""

    __slots__ = ("builder", "operand_id")

    def __init__(self, builder: "DFGBuilder", operand_id: int) -> None:
        self.builder = builder
        self.operand_id = operand_id

    def _binary(self, op: OpType, other: "Wire") -> "Wire":
        if not isinstance(other, Wire):
            return NotImplemented
        if other.builder is not self.builder:
            raise GraphError("cannot combine wires from different builders")
        return self.builder.op(op, [self, other])

    def __and__(self, other: "Wire") -> "Wire":
        return self._binary(OpType.AND, other)

    def __or__(self, other: "Wire") -> "Wire":
        return self._binary(OpType.OR, other)

    def __xor__(self, other: "Wire") -> "Wire":
        return self._binary(OpType.XOR, other)

    def __invert__(self) -> "Wire":
        return self.builder.op(OpType.NOT, [self])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Wire({self.operand_id})"


class DFGBuilder:
    """Incrementally build a :class:`DataFlowGraph` through wires."""

    def __init__(self, name: str = "dfg") -> None:
        self._dag = DataFlowGraph(name)
        self._built = False

    def input(self, name: str) -> Wire:
        """Declare a program input."""
        return Wire(self, self._dag.add_input(name))

    def inputs(self, *names: str) -> list[Wire]:
        """Declare several inputs at once."""
        return [self.input(n) for n in names]

    def const(self, value: int, name: str | None = None) -> Wire:
        """A constant 0/1 broadcast over all lanes."""
        return Wire(self, self._dag.add_const(value, name))

    def op(self, op: OpType, operands: Sequence[Wire]) -> Wire:
        """Add an arbitrary (possibly multi-operand) op node."""
        ids = [self._wire_id(w) for w in operands]
        return Wire(self, self._dag.add_op(op, ids))

    def and_(self, *operands: Wire) -> Wire:
        """n-ary AND."""
        return self.op(OpType.AND, operands)

    def or_(self, *operands: Wire) -> Wire:
        """n-ary OR."""
        return self.op(OpType.OR, operands)

    def xor(self, *operands: Wire) -> Wire:
        """n-ary XOR (parity)."""
        return self.op(OpType.XOR, operands)

    def nand(self, *operands: Wire) -> Wire:
        """n-ary NAND."""
        return self.op(OpType.NAND, operands)

    def nor(self, *operands: Wire) -> Wire:
        """n-ary NOR."""
        return self.op(OpType.NOR, operands)

    def xnor(self, *operands: Wire) -> Wire:
        """n-ary XNOR."""
        return self.op(OpType.XNOR, operands)

    def not_(self, operand: Wire) -> Wire:
        """Bitwise complement."""
        return self.op(OpType.NOT, [operand])

    def output(self, name: str, wire: Wire) -> None:
        """Declare a program output."""
        self._dag.mark_output(self._wire_id(wire), name)

    def build(self) -> DataFlowGraph:
        """Validate and return the graph; the builder stays usable."""
        self._dag.validate()
        if not self._dag.outputs:
            raise GraphError("graph has no outputs; call output() first")
        return self._dag

    def _wire_id(self, wire: Wire) -> int:
        if not isinstance(wire, Wire):
            raise GraphError(f"expected a Wire, got {type(wire).__name__}")
        if wire.builder is not self:
            raise GraphError("wire belongs to a different builder")
        return wire.operand_id
