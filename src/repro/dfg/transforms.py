"""DAG transformations (Sec. 3.3.3 of the paper).

Three rewrites matter for Sherlock:

* **Node substitution** — two op nodes of the same associative type, where
  one's result feeds only the other, fuse into a single multi-operand node.
  The fused node activates more rows simultaneously (MRA > 2): faster, but
  with a worse sensing margin, i.e. a higher decision-failure probability.
  The fraction of multi-operand ops is budgeted, which is exactly the knob
  swept on the x-axis of Fig. 6.

* **NAND lowering** — on technologies with a small HRS/LRS ratio (STT-MRAM),
  the XOR/OR sensing boundaries sit in the noisy low-resistance region and
  become unreliable.  The paper's Fig. 6b therefore uses NAND-based
  implementations of XOR and OR; NAND only needs the well-separated
  all-HRS boundary.

* **Dead-node elimination** — housekeeping after the rewrites above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfg.blevel import compute_blevels
from repro.dfg.graph import DataFlowGraph, OperandKind
from repro.dfg.ops import OpType
from repro.errors import GraphError


@dataclass(frozen=True)
class SubstitutionReport:
    """What :func:`substitute_nodes` did to the graph."""

    merges_applied: int
    ops_before: int
    ops_after: int
    multi_operand_ops: int

    @property
    def multi_operand_fraction(self) -> float:
        """Share of remaining ops that became multi-operand (arity > 2)."""
        return self.multi_operand_ops / self.ops_after if self.ops_after else 0.0


def substitute_nodes(dag: DataFlowGraph, max_operands: int,
                     allowed_fraction: float = 1.0) -> SubstitutionReport:
    """Fuse same-type associative op chains into multi-operand ops, in place.

    ``max_operands`` bounds the arity of a fused node (the target's MRA
    limit).  ``allowed_fraction`` bounds the fraction of op nodes that may
    end up with more than two operands; merges are applied in descending
    b-level order (critical path first) until the budget is exhausted.
    """
    if max_operands < 2:
        raise GraphError(f"max_operands must be >= 2, got {max_operands}")
    if not 0.0 <= allowed_fraction <= 1.0:
        raise GraphError(f"allowed_fraction must be in [0, 1], got {allowed_fraction}")
    ops_before = dag.num_ops
    merges = 0
    outputs = set(dag.outputs.values())

    def multi_count() -> int:
        return sum(1 for n in dag.op_nodes() if n.arity > 2)

    multi = multi_count()
    # Walk consumers in priority order; re-compute b-levels lazily because
    # merges only ever shrink the graph and never invalidate the relative
    # order of the remaining nodes enough to matter for the greedy budget.
    levels = compute_blevels(dag)
    queue = sorted(levels, key=lambda op_id: (-levels[op_id], op_id))
    alive = {op_id for op_id in queue}
    for consumer_id in queue:
        if consumer_id not in alive:
            continue
        changed = True
        while changed:
            changed = False
            consumer = dag.op(consumer_id)
            if not consumer.op.is_associative:
                break
            for operand_id in consumer.operands:
                operand = dag.operand(operand_id)
                producer_id = operand.producer
                if producer_id is None or producer_id not in alive:
                    continue
                producer = dag.op(producer_id)
                if producer.op is not consumer.op:
                    continue
                if len(dag.consumers(operand_id)) != 1 or operand_id in outputs:
                    continue
                fused_arity = consumer.arity - 1 + producer.arity
                if fused_arity > max_operands:
                    continue
                will_be_multi = fused_arity > 2
                already_multi = consumer.arity > 2
                new_multi = multi + (1 if will_be_multi and not already_multi else 0)
                new_multi -= 1 if producer.arity > 2 else 0
                ops_after = dag.num_ops - 1
                if will_be_multi and ops_after and new_multi / ops_after > allowed_fraction:
                    continue
                new_operands = []
                for oid in consumer.operands:
                    if oid == operand_id:
                        new_operands.extend(producer.operands)
                    else:
                        new_operands.append(oid)
                dag.replace_op(consumer_id, operands=new_operands)
                dag.delete_op(producer_id)
                alive.discard(producer_id)
                multi = new_multi
                merges += 1
                changed = True
                break
    return SubstitutionReport(merges, ops_before, dag.num_ops, multi_count())


def split_multi_operand(dag: DataFlowGraph, max_operands: int = 2) -> int:
    """Split ops with arity above ``max_operands`` into balanced trees.

    Returns the number of ops split.  This is the inverse of
    :func:`substitute_nodes`; the paper's "MRA = 2" configurations run the
    original two-operand DAG, which this transform restores.
    """
    if max_operands < 2:
        raise GraphError(f"max_operands must be >= 2, got {max_operands}")
    split = 0
    for node in list(dag.op_nodes()):
        if node.arity <= max_operands:
            continue
        if not node.op.is_associative and not node.op.is_inverted:
            raise GraphError(f"cannot split non-associative op {node.op.value}")
        split += 1
        base = node.op.base
        operands = list(node.operands)
        while len(operands) > max_operands:
            grouped = []
            for i in range(0, len(operands), max_operands):
                chunk = operands[i:i + max_operands]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                else:
                    grouped.append(dag.add_op(base, chunk))
            operands = grouped
        dag.replace_op(node.node_id, operands=operands)
        if node.op is not base and len(operands) == 1:
            # Degenerate case cannot happen: arity > max_operands >= 2 always
            # leaves at least two groups at the top level.
            raise GraphError("internal error: multi-operand split collapsed")
    return split


def nand_lower(dag: DataFlowGraph) -> int:
    """Rewrite XOR/XNOR/OR/NOR ops into NAND/AND/NOT networks, in place.

    Binary XOR becomes the classic four-NAND network; n-ary XORs are first
    split into binary trees.  OR(a, b, ...) becomes NAND(¬a, ¬b, ...), and
    the inverted variants absorb one extra NOT.  Returns the number of ops
    rewritten.  AND/NAND are untouched — their sensing boundary lies in the
    quiet all-HRS region and is already the most reliable one.
    """
    rewritten = 0
    for node in list(dag.op_nodes()):
        if node.op.base is OpType.XOR and node.arity > 2:
            split_multi_operand_single(dag, node.node_id)
    for node in list(dag.op_nodes()):
        base = node.op.base
        if base is OpType.XOR:
            a, b = node.operands
            nab = dag.add_op(OpType.NAND, [a, b])
            left = dag.add_op(OpType.NAND, [a, nab])
            right = dag.add_op(OpType.NAND, [b, nab])
            if node.op is OpType.XOR:
                dag.replace_op(node.node_id, op=OpType.NAND, operands=[left, right])
            else:  # XNOR = NOT(XOR) = AND of the two inner NANDs
                dag.replace_op(node.node_id, op=OpType.AND, operands=[left, right])
            rewritten += 1
        elif base is OpType.OR:
            inverted = [dag.add_op(OpType.NOT, [oid]) for oid in node.operands]
            if node.op is OpType.OR:
                dag.replace_op(node.node_id, op=OpType.NAND, operands=inverted)
            else:  # NOR = AND of the complements
                dag.replace_op(node.node_id, op=OpType.AND, operands=inverted)
            rewritten += 1
    return rewritten


def split_multi_operand_single(dag: DataFlowGraph, op_id: int) -> None:
    """Split one multi-operand op into a binary tree (helper)."""
    node = dag.op(op_id)
    base = node.op.base
    operands = list(node.operands)
    while len(operands) > 2:
        grouped = []
        for i in range(0, len(operands), 2):
            chunk = operands[i:i + 2]
            grouped.append(chunk[0] if len(chunk) == 1 else dag.add_op(base, chunk))
        operands = grouped
    dag.replace_op(op_id, operands=operands)


def fold_duplicate_operands(dag: DataFlowGraph) -> int:
    """Canonicalize ops that mention an operand more than once, in place.

    The CIM array activates each operand row once, so ``AND(a, a)`` cannot
    be executed literally.  Idempotent ops simply drop the duplicates; the
    XOR family keeps operands with odd multiplicity (pairs cancel).  Ops
    that collapse to a single operand become copies (uses are rewired) or a
    NOT; XOR ops that cancel entirely become the constant 0 (XNOR: 1).
    Returns the number of ops rewritten.
    """
    rewritten = 0
    for op_id in dag.topological_ops():
        node = dag.op(op_id)
        counts: dict[int, int] = {}
        for oid in node.operands:
            counts[oid] = counts.get(oid, 0) + 1
        if all(c == 1 for c in counts.values()):
            continue
        rewritten += 1
        if node.op.base is OpType.XOR:
            keep = [oid for oid in dict.fromkeys(node.operands) if counts[oid] % 2]
        else:
            keep = list(dict.fromkeys(node.operands))
        if len(keep) >= 2:
            dag.replace_op(op_id, operands=keep)
        elif len(keep) == 1:
            if node.op.is_inverted:
                dag.replace_op(op_id, op=OpType.NOT, operands=keep)
            else:
                dag.replace_uses(node.result, keep[0])
                dag.delete_op(op_id)
        else:  # empty XOR: pairs cancel to the constant 0 (XNOR -> 1)
            const = dag.add_const(1 if node.op is OpType.XNOR else 0)
            dag.replace_uses(node.result, const)
            dag.delete_op(op_id)
    return rewritten


def eliminate_dead_nodes(dag: DataFlowGraph) -> int:
    """Remove ops and source operands that do not reach any output."""
    removed = 0
    live_operands, live_ops = dag.live_nodes()
    # Repeatedly peel ops whose result is unused; deleting one op can expose
    # its producers.
    changed = True
    while changed:
        changed = False
        for node in list(dag.op_nodes()):
            if node.node_id in live_ops:
                continue
            if not dag.consumers(node.result) and node.result not in dag.outputs.values():
                dag.delete_op(node.node_id)
                removed += 1
                changed = True
    for operand in list(dag.operand_nodes()):
        if operand.node_id in live_operands or operand.producer is not None:
            continue
        if operand.kind is OperandKind.INPUT:
            continue  # keep declared inputs even if unused
        if not dag.consumers(operand.node_id):
            dag.delete_operand(operand.node_id)
            removed += 1
    return removed


def common_subexpression_elimination(dag: DataFlowGraph) -> int:
    """Merge op nodes computing the same function of the same operands.

    Operand order is irrelevant for the commutative scouting ops, so the key
    is (op type, operand multiset).  Returns the number of ops removed.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        seen: dict[tuple, int] = {}
        replace: dict[int, int] = {}  # duplicate result -> canonical result
        for op_id in dag.topological_ops():
            node = dag.op(op_id)
            operands = tuple(replace.get(oid, oid) for oid in node.operands)
            if operands != node.operands:
                dag.replace_op(op_id, operands=operands)
                node = dag.op(op_id)
            key = (node.op, tuple(sorted(node.operands)))
            if key in seen:
                canonical = dag.op(seen[key])
                replace[node.result] = canonical.result
            else:
                seen[key] = op_id
        if not replace:
            break
        for dup_result, canonical_result in replace.items():
            producer = dag.operand(dup_result).producer
            for consumer_id in list(dag.consumers(dup_result)):
                consumer = dag.op(consumer_id)
                dag.replace_op(consumer_id, operands=[
                    canonical_result if oid == dup_result else oid
                    for oid in consumer.operands])
            outputs = {name: oid for name, oid in dag.outputs.items() if oid == dup_result}
            if outputs:
                continue  # keep output-producing duplicates alive
            if not dag.consumers(dup_result):
                dag.delete_op(producer)
                removed += 1
                changed = True
    return removed
