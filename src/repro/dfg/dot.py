"""Graphviz DOT export of a data-flow graph (for inspection/papers)."""

from __future__ import annotations

from repro.dfg.blevel import compute_blevels
from repro.dfg.graph import DataFlowGraph, OperandKind


def to_dot(dag: DataFlowGraph, with_blevels: bool = True) -> str:
    """Render the DFG in the style of Fig. 3b: orange operands, blue ops."""
    levels = compute_blevels(dag) if with_blevels else {}
    output_ids = {oid: name for name, oid in dag.outputs.items()}
    lines = [f'digraph "{dag.name}" {{', "  rankdir=TB;"]
    for operand in dag.operand_nodes():
        label = operand.name or f"t{operand.node_id}"
        if operand.kind is OperandKind.CONST:
            label = str(operand.const_value)
        if operand.node_id in output_ids:
            label += f"\\n[{output_ids[operand.node_id]}]"
        lines.append(
            f'  n{operand.node_id} [label="{label}", shape=ellipse, '
            'style=filled, fillcolor=orange];')
    for node in dag.op_nodes():
        label = node.op.value.upper()
        if with_blevels:
            label += f"\\nb={levels[node.node_id]}"
        lines.append(
            f'  n{node.node_id} [label="{label}", shape=box, '
            'style=filled, fillcolor=lightblue];')
    for node in dag.op_nodes():
        for oid in node.operands:
            lines.append(f"  n{oid} -> n{node.node_id};")
        lines.append(f"  n{node.node_id} -> n{node.result};")
    lines.append("}")
    return "\n".join(lines)
