"""Composing data-flow graphs: disjoint union with shared inputs.

Batched workloads (multi-segment scans, pixel tiles) map several kernel
instances onto the CIM arrays at once.  :func:`union` splices component
DAGs into one: inputs with the same name become one resident operand
(data reuse across instances — exactly what the naive mapping duplicates
and Sherlock's clustering exploits), while outputs get per-instance
prefixes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dfg.graph import DataFlowGraph, OperandKind
from repro.errors import GraphError


def union(graphs: Sequence[DataFlowGraph], prefixes: Sequence[str] | None = None,
          name: str = "union") -> DataFlowGraph:
    """Splice several DAGs into one, sharing equally named inputs.

    ``prefixes[i]`` is prepended to the outputs of ``graphs[i]`` (default
    ``g<i>_``).  Input names are global: two components naming an input
    ``x[3]`` will read the same operand node.
    """
    if not graphs:
        raise GraphError("union needs at least one graph")
    if prefixes is None:
        prefixes = [f"g{i}_" for i in range(len(graphs))]
    if len(prefixes) != len(graphs):
        raise GraphError("need exactly one prefix per graph")
    merged = DataFlowGraph(name)
    inputs_by_name: dict[str, int] = {}
    for graph, prefix in zip(graphs, prefixes):
        mapping: dict[int, int] = {}
        for operand in graph.operand_nodes():
            if operand.producer is not None:
                continue
            if operand.kind is OperandKind.INPUT:
                if operand.name not in inputs_by_name:
                    inputs_by_name[operand.name] = merged.add_input(operand.name)
                mapping[operand.node_id] = inputs_by_name[operand.name]
            else:
                mapping[operand.node_id] = merged.add_const(
                    operand.const_value, operand.name)
        for op_id in graph.topological_ops():
            node = graph.op(op_id)
            mapping[node.result] = merged.add_op(
                node.op, [mapping[oid] for oid in node.operands])
        for out_name, oid in graph.outputs.items():
            merged.mark_output(mapping[oid], f"{prefix}{out_name}")
    merged.validate()
    return merged
