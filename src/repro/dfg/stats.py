"""Graph statistics and structural hashing of data-flow graphs.

Two consumers need a compact, comparable view of a DFG:

* The pass manager (:mod:`repro.core.passes`) snapshots
  :class:`GraphStats` before and after every pass to report per-pass
  node/edge deltas and op-type histogram changes.
* The compile cache keys on :func:`structural_hash`, a stable digest of
  the graph *structure* (node kinds, op types, edges, outputs) so that
  recompiling a structurally identical DAG with the same target and
  configuration can reuse the previous result.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.dfg.graph import DataFlowGraph, iter_edges


@dataclass(frozen=True)
class GraphStats:
    """Size snapshot of one DFG: node/edge counts and the op histogram."""

    operands: int
    ops: int
    edges: int
    #: op-type value -> number of op nodes of that type
    op_histogram: dict[str, int] = field(default_factory=dict)

    @property
    def nodes(self) -> int:
        """Total node count of the bipartite graph (operands + ops)."""
        return self.operands + self.ops

    def delta(self, other: "GraphStats") -> "GraphStats":
        """Per-field difference ``other - self`` (after minus before)."""
        hist = {}
        for key in set(self.op_histogram) | set(other.op_histogram):
            diff = other.op_histogram.get(key, 0) - self.op_histogram.get(key, 0)
            if diff:
                hist[key] = diff
        return GraphStats(
            operands=other.operands - self.operands,
            ops=other.ops - self.ops,
            edges=other.edges - self.edges,
            op_histogram=hist,
        )


def graph_stats(dag: DataFlowGraph) -> GraphStats:
    """Collect a :class:`GraphStats` snapshot of the graph."""
    histogram = {op.value: count for op, count in dag.op_histogram().items()}
    return GraphStats(
        operands=dag.num_operands,
        ops=dag.num_ops,
        edges=sum(1 for _ in iter_edges(dag)),
        op_histogram=dict(sorted(histogram.items())),
    )


def structural_hash(dag: DataFlowGraph) -> str:
    """A stable hex digest of the graph structure.

    Covers operand kinds/names/constants, op types and their operand and
    result wiring, and the named outputs — everything that determines what
    the compiler will do with the graph.  The graph's display ``name`` is
    deliberately excluded so renamed copies of the same DAG hash equal.
    """
    hasher = hashlib.sha256()
    for operand in sorted(dag.operand_nodes(), key=lambda o: o.node_id):
        hasher.update(
            f"o|{operand.node_id}|{operand.kind.value}|{operand.name}"
            f"|{operand.const_value}\n".encode())
    for node in sorted(dag.op_nodes(), key=lambda n: n.node_id):
        operands = ",".join(map(str, node.operands))
        hasher.update(
            f"p|{node.node_id}|{node.op.value}|{operands}|{node.result}\n"
            .encode())
    for name in sorted(dag.outputs):
        hasher.update(f"out|{name}|{dag.outputs[name]}\n".encode())
    return hasher.hexdigest()
