"""b-level priorities for DAG scheduling (Kwok & Ahmad, CSUR'99).

The b-level of a node is the length of the longest path from the node to any
exit node, counting node weights along the path.  In Sherlock's DFG all
operation nodes are unit-weighted while operand nodes and edges carry zero
weight (Sec. 3.1), so the b-level of an op node is simply one plus the
largest b-level among the ops consuming its result.  Both mapping algorithms
process op nodes in descending b-level order, which is also a valid
topological order between dependent nodes.
"""

from __future__ import annotations

from repro.dfg.graph import DataFlowGraph


def compute_blevels(dag: DataFlowGraph) -> dict[int, int]:
    """b-level of every op node (op node id -> priority)."""
    levels: dict[int, int] = {}
    for op_id in reversed(dag.topological_ops()):
        succ_levels = [levels[s] for s in dag.succ_ops(op_id)]
        levels[op_id] = 1 + (max(succ_levels) if succ_levels else 0)
    return levels


def blevel_order(dag: DataFlowGraph) -> list[int]:
    """Op node ids sorted by descending b-level (the paper's node queue).

    Ties are broken by ascending node id, which makes the order — and hence
    every mapping built from it — deterministic.
    """
    levels = compute_blevels(dag)
    return sorted(levels, key=lambda op_id: (-levels[op_id], op_id))


def critical_path_length(dag: DataFlowGraph) -> int:
    """Number of op nodes on the longest dependence chain."""
    levels = compute_blevels(dag)
    return max(levels.values(), default=0)
