"""Reference (functional) evaluation of a data-flow graph.

Bulk values are Python integers used as lane bitmasks: bit ``i`` of a value
is the bit held by lane ``i``.  Arbitrary-precision integers make the lane
count unbounded and the bitwise semantics exact, which is precisely what we
need to cross-check the compiled instruction traces against the source DAG.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.dfg.graph import DataFlowGraph, OperandKind
from repro.dfg.ops import apply_op
from repro.errors import GraphError


def evaluate(dag: DataFlowGraph, inputs: Mapping[str, int], lanes: int) -> dict[str, int]:
    """Evaluate the DAG on ``lanes`` parallel lanes.

    ``inputs`` maps input names to lane bitmasks; the result maps output
    names to lane bitmasks.  Values wider than the lane count are rejected.
    """
    if lanes < 1:
        raise GraphError(f"lane count must be positive, got {lanes}")
    mask = (1 << lanes) - 1
    values: dict[int, int] = {}
    for operand in dag.operand_nodes():
        if operand.kind is OperandKind.INPUT:
            if operand.name not in inputs:
                raise GraphError(f"missing value for input {operand.name!r}")
            value = inputs[operand.name]
            if value < 0 or value > mask:
                raise GraphError(
                    f"input {operand.name!r} does not fit in {lanes} lanes")
            values[operand.node_id] = value
        elif operand.kind is OperandKind.CONST:
            values[operand.node_id] = mask if operand.const_value else 0
    unknown = set(inputs) - {o.name for o in dag.inputs()}
    if unknown:
        raise GraphError(f"unknown inputs: {sorted(unknown)}")
    for op_id in dag.topological_ops():
        node = dag.op(op_id)
        operand_values = [values[oid] for oid in node.operands]
        values[node.result] = apply_op(node.op, operand_values, mask)
    results = {}
    for name, oid in dag.outputs.items():
        if oid not in values:
            raise GraphError(f"output {name!r} is not computed by any op")
        results[name] = values[oid]
    return results


def evaluate_many(dag: DataFlowGraph, input_sets, lanes: int) -> list[dict[str, int]]:
    """Evaluate the DAG on each input set in turn (same checks as :func:`evaluate`).

    The reference counterpart of :meth:`CompiledProgram.execute_many`: a
    plain loop, kept simple on purpose so differential tests have an
    unambiguous oracle for batch semantics.
    """
    return [evaluate(dag, inputs, lanes) for inputs in input_sets]


def evaluate_all(dag: DataFlowGraph, inputs: Mapping[str, int], lanes: int) -> dict[int, int]:
    """Like :func:`evaluate` but return the value of *every* operand node."""
    mask = (1 << lanes) - 1
    values: dict[int, int] = {}
    for operand in dag.operand_nodes():
        if operand.kind is OperandKind.INPUT:
            values[operand.node_id] = inputs[operand.name] & mask
        elif operand.kind is OperandKind.CONST:
            values[operand.node_id] = mask if operand.const_value else 0
    for op_id in dag.topological_ops():
        node = dag.op(op_id)
        values[node.result] = apply_op(node.op, [values[o] for o in node.operands], mask)
    return values
