"""Logic operation types supported by scouting-logic CIM arrays.

Scouting logic (Xie et al., ISVLSI'17) natively supports (N)AND, (N)OR and
X(N)OR by comparing the combined resistance of the simultaneously activated
rows against one or more reference resistances.  NOT and COPY are realized
with CMOS circuitry in the row buffer (Sec. 2.1 of the paper) and therefore
never involve a multi-row sensing decision.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from repro.errors import GraphError


class OpType(enum.Enum):
    """A bulk-bitwise logic operation."""

    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    NOT = "not"

    @property
    def is_inverted(self) -> bool:
        """Whether the sense-amplifier output is complemented."""
        return self in (OpType.NAND, OpType.NOR, OpType.XNOR, OpType.NOT)

    @property
    def base(self) -> "OpType":
        """The non-inverted operation with the same sensing boundaries."""
        return _BASE[self]

    @property
    def is_associative(self) -> bool:
        """Whether n-ary chains of this op can be flattened (Sec. 3.3.3)."""
        return self in (OpType.AND, OpType.OR, OpType.XOR)

    @property
    def min_arity(self) -> int:
        """Smallest legal operand count for this op type."""
        return 1 if self is OpType.NOT else 2

    @property
    def max_arity(self) -> int | None:
        """Upper arity bound imposed by the op itself (``None`` = unbounded).

        NOT is unary.  The inverted ops are n-ary at the sensing level just
        like their bases; the *target* further restricts arity through its
        multi-row-activation (MRA) limit.
        """
        return 1 if self is OpType.NOT else None


_BASE = {
    OpType.AND: OpType.AND,
    OpType.NAND: OpType.AND,
    OpType.OR: OpType.OR,
    OpType.NOR: OpType.OR,
    OpType.XOR: OpType.XOR,
    OpType.XNOR: OpType.XOR,
    OpType.NOT: OpType.NOT,
}


def check_arity(op: OpType, arity: int) -> None:
    """Raise :class:`GraphError` unless ``arity`` is legal for ``op``."""
    if arity < op.min_arity:
        raise GraphError(f"{op.value} needs at least {op.min_arity} operand(s), got {arity}")
    if op.max_arity is not None and arity > op.max_arity:
        raise GraphError(f"{op.value} takes at most {op.max_arity} operand(s), got {arity}")


def apply_op(op: OpType, values: Sequence[int], mask: int) -> int:
    """Evaluate ``op`` on lane-parallel bit vectors.

    Values are Python integers interpreted as lane bitmasks; ``mask`` is the
    all-lanes-set constant ``(1 << lanes) - 1`` used to bound complements.
    """
    check_arity(op, len(values))
    if op is OpType.NOT:
        return ~values[0] & mask
    acc = values[0]
    if op.base is OpType.AND:
        for v in values[1:]:
            acc &= v
    elif op.base is OpType.OR:
        for v in values[1:]:
            acc |= v
    else:  # XOR family
        for v in values[1:]:
            acc ^= v
    if op.is_inverted:
        acc = ~acc & mask
    return acc & mask
