"""Data-flow graph (DFG) intermediate representation.

The DFG is the bipartite DAG of Fig. 3b in the paper: *operand* nodes (the
orange nodes — program inputs, constants and intermediate results) alternate
with *operation* nodes (the blue nodes — bulk-bitwise logic ops).  Operation
nodes carry unit weight, operand nodes and edges carry zero weight; the
b-level of an operation node is its scheduling priority (Sec. 3.1).

Node identifiers are small integers unique within one graph.  Every op node
produces exactly one operand node (its result); an operand node is produced
by at most one op node and consumed by any number of op nodes.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.dfg.ops import OpType, check_arity
from repro.errors import GraphError


class OperandKind(enum.Enum):
    """What an operand node represents."""

    INPUT = "input"
    CONST = "const"
    INTERMEDIATE = "intermediate"


@dataclass
class OperandNode:
    """An orange node: a bulk bit-vector living in (or bound for) the array."""

    node_id: int
    kind: OperandKind
    name: str | None = None
    const_value: int | None = None  # 0 or 1, broadcast over all lanes
    producer: int | None = None  # op node id, None for inputs/consts

    @property
    def is_source(self) -> bool:
        """Whether this operand is a DAG input/constant (no producer op)."""
        return self.producer is None


@dataclass
class OpNode:
    """A blue node: one column-wise scouting-logic operation."""

    node_id: int
    op: OpType
    operands: tuple[int, ...]
    result: int

    @property
    def arity(self) -> int:
        """Number of input operands this op consumes."""
        return len(self.operands)


@dataclass
class _Entry:
    operand: OperandNode | None = None
    op: OpNode | None = None
    consumers: list[int] = field(default_factory=list)


class DataFlowGraph:
    """Mutable bipartite DAG of operands and bulk-bitwise operations."""

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._next_id = 0
        self._operands: dict[int, OperandNode] = {}
        self._ops: dict[int, OpNode] = {}
        self._consumers: dict[int, list[int]] = {}  # operand id -> op ids
        self._outputs: dict[str, int] = {}  # output name -> operand id

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_id(self) -> int:
        nid = self._next_id
        self._next_id += 1
        return nid

    def add_input(self, name: str) -> int:
        """Add a program input and return its operand node id."""
        if any(o.name == name and o.kind is OperandKind.INPUT for o in self._operands.values()):
            raise GraphError(f"duplicate input name {name!r}")
        nid = self._new_id()
        self._operands[nid] = OperandNode(nid, OperandKind.INPUT, name=name)
        self._consumers[nid] = []
        return nid

    def add_const(self, value: int, name: str | None = None) -> int:
        """Add a constant operand (``0`` or ``1``, broadcast over lanes)."""
        if value not in (0, 1):
            raise GraphError(f"constant must be 0 or 1, got {value!r}")
        nid = self._new_id()
        self._operands[nid] = OperandNode(nid, OperandKind.CONST, name=name, const_value=value)
        self._consumers[nid] = []
        return nid

    def add_op(self, op: OpType, operands: Sequence[int]) -> int:
        """Add an operation node; return the id of its result operand."""
        check_arity(op, len(operands))
        for oid in operands:
            if oid not in self._operands:
                raise GraphError(f"operand node {oid} does not exist")
        op_id = self._new_id()
        res_id = self._new_id()
        self._operands[res_id] = OperandNode(res_id, OperandKind.INTERMEDIATE, producer=op_id)
        self._consumers[res_id] = []
        node = OpNode(op_id, op, tuple(operands), res_id)
        self._ops[op_id] = node
        for oid in operands:
            self._consumers[oid].append(op_id)
        return res_id

    def mark_output(self, operand_id: int, name: str) -> None:
        """Declare an operand node as a program output."""
        if operand_id not in self._operands:
            raise GraphError(f"operand node {operand_id} does not exist")
        if name in self._outputs:
            raise GraphError(f"duplicate output name {name!r}")
        self._outputs[name] = operand_id

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def outputs(self) -> dict[str, int]:
        """Output name -> operand node id (a defensive copy)."""
        return dict(self._outputs)

    def inputs(self) -> list[OperandNode]:
        """All declared input operand nodes."""
        return [o for o in self._operands.values() if o.kind is OperandKind.INPUT]

    def operand(self, operand_id: int) -> OperandNode:
        """Look up an operand node by id."""
        try:
            return self._operands[operand_id]
        except KeyError:
            raise GraphError(f"operand node {operand_id} does not exist") from None

    def op(self, op_id: int) -> OpNode:
        """Look up an op node by id."""
        try:
            return self._ops[op_id]
        except KeyError:
            raise GraphError(f"op node {op_id} does not exist") from None

    def operand_nodes(self) -> Iterator[OperandNode]:
        """Iterate over all operand nodes (snapshot)."""
        return iter(list(self._operands.values()))

    def op_nodes(self) -> Iterator[OpNode]:
        """Iterate over all op nodes (snapshot)."""
        return iter(list(self._ops.values()))

    @property
    def num_operands(self) -> int:
        """Number of operand nodes in the graph."""
        return len(self._operands)

    @property
    def num_ops(self) -> int:
        """Number of op nodes in the graph."""
        return len(self._ops)

    def consumers(self, operand_id: int) -> list[int]:
        """Op node ids that read the given operand."""
        try:
            return list(self._consumers[operand_id])
        except KeyError:
            raise GraphError(f"operand node {operand_id} does not exist") from None

    def pred_ops(self, op_id: int) -> list[int]:
        """Op nodes whose results feed the given op (the DAG predecessors)."""
        node = self.op(op_id)
        preds = []
        for oid in node.operands:
            producer = self._operands[oid].producer
            if producer is not None:
                preds.append(producer)
        return preds

    def succ_ops(self, op_id: int) -> list[int]:
        """Op nodes that consume the given op's result."""
        return list(self._consumers[self.op(op_id).result])

    # ------------------------------------------------------------------
    # mutation (used by the DAG transforms of Sec. 3.3.3)
    # ------------------------------------------------------------------
    def replace_op(self, op_id: int, op: OpType | None = None,
                   operands: Sequence[int] | None = None) -> None:
        """Rewrite an op node's type and/or operand list in place."""
        node = self.op(op_id)
        new_op = node.op if op is None else op
        new_operands = node.operands if operands is None else tuple(operands)
        check_arity(new_op, len(new_operands))
        for oid in new_operands:
            if oid not in self._operands:
                raise GraphError(f"operand node {oid} does not exist")
        for oid in node.operands:
            self._consumers[oid].remove(op_id)
        for oid in new_operands:
            self._consumers[oid].append(op_id)
        node.op = new_op
        node.operands = new_operands

    def delete_op(self, op_id: int) -> None:
        """Remove an op node and its (necessarily unused) result operand."""
        node = self.op(op_id)
        if self._consumers[node.result]:
            raise GraphError(f"cannot delete op {op_id}: result still consumed")
        if node.result in self._outputs.values():
            raise GraphError(f"cannot delete op {op_id}: result is an output")
        for oid in node.operands:
            self._consumers[oid].remove(op_id)
        del self._consumers[node.result]
        del self._operands[node.result]
        del self._ops[op_id]

    def replace_uses(self, old_operand: int, new_operand: int) -> None:
        """Redirect every consumer and output of one operand to another."""
        self.operand(old_operand)
        self.operand(new_operand)
        if old_operand == new_operand:
            return
        for consumer_id in list(self._consumers[old_operand]):
            node = self._ops[consumer_id]
            self.replace_op(consumer_id, operands=[
                new_operand if oid == old_operand else oid
                for oid in node.operands])
        for name, oid in list(self._outputs.items()):
            if oid == old_operand:
                self._outputs[name] = new_operand

    def delete_operand(self, operand_id: int) -> None:
        """Remove an unused, unproduced operand node (dead input/const)."""
        node = self.operand(operand_id)
        if self._consumers[operand_id]:
            raise GraphError(f"cannot delete operand {operand_id}: still consumed")
        if node.producer is not None:
            raise GraphError(f"cannot delete operand {operand_id}: delete its op instead")
        if operand_id in self._outputs.values():
            raise GraphError(f"cannot delete operand {operand_id}: it is an output")
        del self._consumers[operand_id]
        del self._operands[operand_id]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_ops(self) -> list[int]:
        """Op node ids in a producer-before-consumer order (Kahn)."""
        indeg = {op_id: len(self.pred_ops(op_id)) for op_id in self._ops}
        ready = sorted(op_id for op_id, d in indeg.items() if d == 0)
        order: list[int] = []
        while ready:
            op_id = ready.pop()
            order.append(op_id)
            for succ in self.succ_ops(op_id):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._ops):
            raise GraphError("data-flow graph contains a cycle")
        return order

    def validate(self) -> None:
        """Check the bipartite-DAG invariants; raise :class:`GraphError`."""
        for op_id, node in self._ops.items():
            check_arity(node.op, node.arity)
            for oid in node.operands:
                if oid not in self._operands:
                    raise GraphError(f"op {op_id} reads unknown operand {oid}")
                if op_id not in self._consumers[oid]:
                    raise GraphError(f"consumer list of {oid} is missing op {op_id}")
            result = self._operands.get(node.result)
            if result is None or result.producer != op_id:
                raise GraphError(f"op {op_id} has a dangling result link")
        for oid, operand in self._operands.items():
            if operand.producer is not None and operand.producer not in self._ops:
                raise GraphError(f"operand {oid} produced by unknown op {operand.producer}")
            if operand.kind is OperandKind.CONST and operand.const_value not in (0, 1):
                raise GraphError(f"constant operand {oid} has bad value")
        for name, oid in self._outputs.items():
            if oid not in self._operands:
                raise GraphError(f"output {name!r} refers to unknown operand {oid}")
        self.topological_ops()  # raises on cycles

    def live_nodes(self) -> tuple[set[int], set[int]]:
        """Operand and op node ids reachable backwards from the outputs."""
        live_operands: set[int] = set()
        live_ops: set[int] = set()
        stack = list(self._outputs.values())
        while stack:
            oid = stack.pop()
            if oid in live_operands:
                continue
            live_operands.add(oid)
            producer = self._operands[oid].producer
            if producer is not None and producer not in live_ops:
                live_ops.add(producer)
                stack.extend(self._ops[producer].operands)
        return live_operands, live_ops

    def copy(self, name: str | None = None) -> "DataFlowGraph":
        """Deep copy of the graph, preserving node ids."""
        g = DataFlowGraph(name or self.name)
        g._next_id = self._next_id
        g._operands = {
            oid: OperandNode(o.node_id, o.kind, o.name, o.const_value, o.producer)
            for oid, o in self._operands.items()
        }
        g._ops = {
            op_id: OpNode(n.node_id, n.op, n.operands, n.result)
            for op_id, n in self._ops.items()
        }
        g._consumers = {oid: list(c) for oid, c in self._consumers.items()}
        g._outputs = dict(self._outputs)
        return g

    def op_histogram(self) -> dict[OpType, int]:
        """Count op nodes per operation type."""
        hist: dict[OpType, int] = {}
        for node in self._ops.values():
            hist[node.op] = hist.get(node.op, 0) + 1
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DataFlowGraph({self.name!r}, operands={len(self._operands)}, "
                f"ops={len(self._ops)}, outputs={len(self._outputs)})")


def input_ids(dag: DataFlowGraph) -> dict[str, int]:
    """Map input names to operand node ids."""
    return {o.name: o.node_id for o in dag.inputs()}


def iter_edges(dag: DataFlowGraph) -> Iterable[tuple[int, int]]:
    """All (src, dst) node-id edges of the bipartite graph."""
    for node in dag.op_nodes():
        for oid in node.operands:
            yield (oid, node.node_id)
        yield (node.node_id, node.result)
