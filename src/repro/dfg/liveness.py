"""Operand liveness over a fixed op schedule (register-allocation style).

Both mappers process op nodes in a deterministic order (b-level order for
per-op generation, dependence levels for the merged scheduler).  Relative
to that order every operand has a *last use* — the position of the last op
that reads it.  Past its last use the operand's cells hold dead data and
may be recycled for later placements, exactly like a register allocator
reuses a register after a live range ends (the "free cells" Sherlock's
mapper writes results into, Sec. 2.2/Fig. 4).

Program outputs are never dead: their cells are read back after the whole
program ran.  Source operands (inputs/constants) are preloaded before the
program starts, so their *primary* copy must survive from position zero;
only their duplicate gather copies are recyclable — the caller enforces
that split via :meth:`repro.arch.layout.Layout.release_duplicates`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.dfg.graph import DataFlowGraph

#: last-use position of operands that must never be recycled (outputs)
NEVER_DEAD = float("inf")


@dataclass(frozen=True)
class Liveness:
    """Last-use positions of every operand relative to one schedule."""

    #: operand id -> position of the last op consuming it (NEVER_DEAD for
    #: program outputs; the producing position for unconsumed results)
    last_use: dict[int, float]
    #: position -> operand ids whose last use is exactly that position
    dying_at: dict[int, list[int]] = field(default_factory=dict)

    def is_dead(self, operand_id: int, position: int) -> bool:
        """Whether the operand is dead once ``position`` has been processed."""
        return self.last_use.get(operand_id, NEVER_DEAD) <= position

    def dead_before(self, operand_id: int, position: int) -> bool:
        """Whether the operand is already dead when ``position`` starts."""
        return self.last_use.get(operand_id, NEVER_DEAD) < position


def compute_liveness(dag: DataFlowGraph,
                     position_of: dict[int, int]) -> Liveness:
    """Liveness of every operand given op positions (index or level).

    ``position_of`` maps every op node id to its schedule position; several
    ops may share a position (the level-synchronous scheduler).  An operand
    dies at the largest position among its consumers — or its producer's
    position if nothing consumes it — and never dies if it is an output.
    """
    output_ids = set(dag.outputs.values())
    last_use: dict[int, float] = {}
    dying_at: dict[int, list[int]] = {}
    for operand in dag.operand_nodes():
        oid = operand.node_id
        if oid in output_ids:
            last_use[oid] = NEVER_DEAD
            continue
        positions = [position_of[c] for c in dag.consumers(oid)]
        if operand.producer is not None:
            positions.append(position_of[operand.producer])
        if not positions:
            # an unconsumed source: dead from the start, but its primary
            # copy is preload data the caller must keep (duplicates only)
            positions.append(-1)
        last = max(positions)
        last_use[oid] = last
        if last >= 0:
            dying_at.setdefault(last, []).append(oid)
    for bucket in dying_at.values():
        bucket.sort()
    return Liveness(last_use=last_use, dying_at=dying_at)


def schedule_liveness(dag: DataFlowGraph,
                      schedule: Sequence[int]) -> Liveness:
    """Liveness over an explicit op schedule (one op per position)."""
    return compute_liveness(dag, {op: i for i, op in enumerate(schedule)})
