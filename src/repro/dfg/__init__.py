"""Data-flow graph IR: the bipartite operand/op DAG of Sherlock (Sec. 3.1)."""

from repro.dfg.blevel import blevel_order, compute_blevels, critical_path_length
from repro.dfg.builder import DFGBuilder, Wire
from repro.dfg.compose import union
from repro.dfg.dot import to_dot
from repro.dfg.evaluate import evaluate, evaluate_all, evaluate_many
from repro.dfg.graph import DataFlowGraph, OperandKind, OperandNode, OpNode
from repro.dfg.liveness import Liveness, compute_liveness, schedule_liveness
from repro.dfg.ops import OpType, apply_op
from repro.dfg.stats import GraphStats, graph_stats, structural_hash
from repro.dfg.transforms import (
    SubstitutionReport,
    common_subexpression_elimination,
    eliminate_dead_nodes,
    fold_duplicate_operands,
    nand_lower,
    split_multi_operand,
    substitute_nodes,
)

__all__ = [
    "DataFlowGraph",
    "DFGBuilder",
    "GraphStats",
    "Liveness",
    "compute_liveness",
    "schedule_liveness",
    "graph_stats",
    "structural_hash",
    "OperandKind",
    "OperandNode",
    "OpNode",
    "OpType",
    "SubstitutionReport",
    "Wire",
    "apply_op",
    "blevel_order",
    "common_subexpression_elimination",
    "compute_blevels",
    "critical_path_length",
    "eliminate_dead_nodes",
    "evaluate",
    "fold_duplicate_operands",
    "evaluate_all",
    "evaluate_many",
    "nand_lower",
    "split_multi_operand",
    "substitute_nodes",
    "to_dot",
    "union",
]
