"""The ``@benchmark`` probe registry and the median-of-k timing harness.

A *probe* is a named, registered function that measures one hot path of
the system — a compile, an execution, a campaign — and returns raw
per-repeat measurements.  The harness (:class:`Timer`) runs each probe's
workload ``repeats`` times and the reported number is the **median** of
those repeats: the median is robust to the one-off outliers (page faults,
GC pauses, a background process) that poison means and minima on shared
machines.

Probes declare a *direction* (``better="lower"`` for wall times,
``better="higher"`` for throughputs) so report comparison knows which way
a change must move to count as a regression.

Registering a probe::

    from repro.bench import benchmark

    @benchmark("compile.cold", group="compile",
               description="cold-cache compile of the bitweaving DAG")
    def compile_cold(timer):
        dag = get_workload("bitweaving").build_dag()
        return timer.measure(lambda: compile_dag(dag, target, cache=False)), \\
            {"workload": "bitweaving"}

The probe function receives a :class:`Timer` and returns ``(values,
meta)``: the per-repeat measurement list and a free-form metadata dict
recorded verbatim in ``BENCH_sherlock.json``.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import BenchError

__all__ = [
    "BENCHMARKS",
    "Probe",
    "ProbeResult",
    "Timer",
    "benchmark",
    "get_probe",
    "run_benchmarks",
    "select_probes",
]

#: values a probe may declare for its ``better`` direction
_DIRECTIONS = ("lower", "higher")


class Timer:
    """Runs a probe workload ``repeats`` times and collects wall times."""

    def __init__(self, repeats: int = 5) -> None:
        if repeats < 1:
            raise BenchError(f"repeat count must be positive, got {repeats}")
        self.repeats = repeats

    def measure(self, work: Callable[[], object],
                setup: Callable[[], object] | None = None) -> list[float]:
        """Wall-time ``work()`` once per repeat; ``setup()`` is untimed.

        Returns the raw per-repeat seconds (callers report the median).
        """
        values: list[float] = []
        for _ in range(self.repeats):
            if setup is not None:
                setup()
            start = time.perf_counter()
            work()
            values.append(time.perf_counter() - start)
        return values

    def throughput(self, work: Callable[[], object], items: int,
                   setup: Callable[[], object] | None = None) -> list[float]:
        """Like :meth:`measure`, but reports ``items`` per second per repeat."""
        if items < 1:
            raise BenchError(f"item count must be positive, got {items}")
        return [items / dt for dt in self.measure(work, setup)]


#: probe fn: Timer -> (per-repeat values, metadata dict)
ProbeFn = Callable[[Timer], tuple[list[float], dict]]


@dataclass(frozen=True)
class Probe:
    """One registered benchmark probe (see :func:`benchmark`)."""

    name: str
    group: str
    description: str
    unit: str
    #: "lower" (wall time) or "higher" (throughput)
    better: str
    fn: ProbeFn


@dataclass(frozen=True)
class ProbeResult:
    """The measured outcome of one probe: median-of-k plus the raw repeats."""

    name: str
    group: str
    unit: str
    better: str
    repeats: int
    median: float
    values: tuple[float, ...]
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (schema: one entry of ``probes``)."""
        return {
            "name": self.name, "group": self.group, "unit": self.unit,
            "better": self.better, "repeats": self.repeats,
            "median": self.median, "values": list(self.values),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        try:
            return cls(name=data["name"], group=data["group"],
                       unit=data["unit"], better=data["better"],
                       repeats=data["repeats"], median=data["median"],
                       values=tuple(data["values"]),
                       meta=dict(data.get("meta", {})))
        except KeyError as missing:
            raise BenchError(
                f"probe entry is missing required key {missing}") from None


#: the process-wide probe registry, keyed by probe name
BENCHMARKS: dict[str, Probe] = {}


def benchmark(name: str, *, group: str, description: str = "",
              unit: str = "s", better: str = "lower",
              ) -> Callable[[ProbeFn], ProbeFn]:
    """Decorator factory registering a probe function under ``name``.

    ``unit`` is a display label ("s", "trials/s"); ``better`` declares the
    improvement direction used by report comparison.
    """
    if better not in _DIRECTIONS:
        raise BenchError(
            f"probe direction must be one of {_DIRECTIONS}, got {better!r}")

    def register(fn: ProbeFn) -> ProbeFn:
        """Record the decorated function in :data:`BENCHMARKS`."""
        if name in BENCHMARKS:
            raise BenchError(f"benchmark probe {name!r} already registered")
        BENCHMARKS[name] = Probe(name=name, group=group,
                                 description=description or (fn.__doc__ or
                                                             "").strip(),
                                 unit=unit, better=better, fn=fn)
        return fn

    return register


def get_probe(name: str) -> Probe:
    """Look up a registered probe by exact name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise BenchError(
            f"unknown benchmark probe {name!r}; known: "
            f"{sorted(BENCHMARKS)}") from None


def select_probes(names: list[str] | None = None) -> list[Probe]:
    """Resolve a probe selection: exact names or group names, sorted.

    ``None`` (or an empty list) selects every registered probe.  Each
    entry must match a probe name or a probe group; anything else raises
    :class:`~repro.errors.BenchError` listing the valid names.
    """
    if not names:
        return [BENCHMARKS[name] for name in sorted(BENCHMARKS)]
    groups = {probe.group for probe in BENCHMARKS.values()}
    selected: dict[str, Probe] = {}
    for entry in names:
        if entry in BENCHMARKS:
            selected[entry] = BENCHMARKS[entry]
        elif entry in groups:
            for probe in BENCHMARKS.values():
                if probe.group == entry:
                    selected[probe.name] = probe
        else:
            raise BenchError(
                f"unknown benchmark probe or group {entry!r}; probes: "
                f"{sorted(BENCHMARKS)}; groups: {sorted(groups)}")
    return [selected[name] for name in sorted(selected)]


def run_benchmarks(names: list[str] | None = None, repeats: int = 5,
                   progress: Callable[[str], None] | None = None,
                   ) -> list[ProbeResult]:
    """Run the selected probes and return one :class:`ProbeResult` each.

    ``progress`` (if given) is called with each probe's name before it
    runs, so long benchmark sessions can narrate themselves.
    """
    results: list[ProbeResult] = []
    for probe in select_probes(names):
        if progress is not None:
            progress(probe.name)
        values, meta = probe.fn(Timer(repeats))
        if len(values) != repeats:
            raise BenchError(
                f"probe {probe.name!r} returned {len(values)} values for "
                f"{repeats} repeats")
        results.append(ProbeResult(
            name=probe.name, group=probe.group, unit=probe.unit,
            better=probe.better, repeats=repeats,
            median=statistics.median(values), values=tuple(values),
            meta=dict(meta)))
    return results
