"""The built-in benchmark probes over the standard workloads.

Fourteen probes cover the hot paths the roadmap optimizes against:

* ``compile.cold`` / ``compile.warm`` — the full pass pipeline on the
  bitweaving DAG with the process compile cache cleared vs primed,
* ``compile.ladder`` — the graceful-degradation path: an oversized
  synthetic DAG that only compiles through recycling + partitioning,
* ``compile.multiarray`` — the multi-array co-scheduler on the Sobel
  kernel (4 arrays), including the cluster partition and assignment pass,
* ``execute.bitweaving`` — functional execution of the compiled program
  through the default engine resolution (vectorized since PR 8),
* ``execute.vectorized`` — the bit-packed op-table backend head-to-head
  against the interpreted reference (speedup ratio in the metadata),
* ``batch.execute_many`` — compile-once/execute-many throughput of the
  batch API in input sets per second,
* ``execute.multiarray`` — execution of the 4-array Sobel schedule on
  the array-set machine, with the modeled latency ratio vs the 1-array
  compile in the metadata,
* ``execute.verified`` — the same execution with verify-after-write on
  (per-cell read-back plus retry/remap bookkeeping), pricing the
  hard-fault detection path against the plain run,
* ``evaluate.reference`` — the reference DAG evaluation every campaign
  trial and shadow check pays for,
* ``campaign.serial`` / ``campaign.parallel`` — fault-injection campaign
  throughput in trials/second, single-process vs the sharded
  process-pool mode (same master seed, so both run identical trials),
* ``serve.cold`` / ``serve.cached`` — a small request batch through the
  :class:`repro.serve.CompileService` against an empty vs a primed
  persistent artifact cache; the gap is the compile work the cache
  amortizes across a serving fleet.

Probe workloads are deliberately small (sub-second per repeat) so
``sherlock bench`` stays cheap enough to run on every change; they are
*relative* numbers for regression tracking, not absolute hardware claims.
"""

from __future__ import annotations

import os
import pathlib
import random
import shutil
import tempfile
import time

from repro.arch.target import TargetSpec
from repro.bench.registry import Timer, benchmark
from repro.core.compiler import clear_compile_cache, compile_dag
from repro.core.config import CompilerConfig
from repro.devices import RERAM, STT_MRAM, FaultMap
from repro.dfg.evaluate import evaluate
from repro.reliability.campaign import run_campaign
from repro.workloads import get_workload
from repro.workloads.synthetic import synthetic_dag

__all__ = [
    "CAMPAIGN_TRIALS",
    "campaign_program",
    "parallel_workers",
]

#: array size for the compile/execute probes (big enough to exercise the
#: clustering mapper, small enough for sub-second cold compiles)
_COMPILE_SIZE = 256
#: simulated lanes for execution-side probes
_LANES = 8
#: trials per campaign-throughput repeat
CAMPAIGN_TRIALS = 160


def _compile_target() -> TargetSpec:
    """The fixed ReRAM target the compile/execute probes measure against."""
    return TargetSpec.square(_COMPILE_SIZE, RERAM)


def campaign_program():
    """The small fault-injecting program the campaign probes measure.

    A 24-op synthetic DAG on high-variability STT-MRAM with MRA = 4 —
    the same regime the campaign test-suite uses, chosen so trials
    actually exercise fault injection rather than a zero-probability
    fast path.
    """
    tech = STT_MRAM.with_variability(0.12, 0.12)
    target = TargetSpec.square(64, tech, num_arrays=4, max_activated_rows=4)
    dag = synthetic_dag(num_ops=24, num_inputs=8, seed=3, name="bench-camp")
    return compile_dag(dag, target, CompilerConfig(mapper="sherlock", mra=4),
                       cache=False)


def parallel_workers() -> int:
    """Worker count for the parallel campaign probe.

    Up to four processes (the shard fan-out the acceptance criteria
    quote), but at least two so the process-pool path is always
    exercised — even on a single-core machine, where the probe then
    documents the pool overhead instead of a speedup.
    """
    return max(2, min(4, os.cpu_count() or 1))


@benchmark("compile.cold", group="compile",
           description="cold-cache compile of the bitweaving DAG "
                       "(sherlock mapper, 256x256 ReRAM)")
def _compile_cold(timer: Timer):
    dag = get_workload("bitweaving").build_dag()
    target = _compile_target()

    def _work():
        compile_dag(dag, target, cache=False)

    values = timer.measure(_work, setup=clear_compile_cache)
    return values, {"workload": "bitweaving", "size": _COMPILE_SIZE,
                    "mapper": "sherlock"}


@benchmark("compile.warm", group="compile",
           description="warm-cache compile of the bitweaving DAG "
                       "(process compile-cache hit path)")
def _compile_warm(timer: Timer):
    dag = get_workload("bitweaving").build_dag()
    target = _compile_target()
    compile_dag(dag, target, cache=True)  # prime the cache, untimed

    def _work():
        compile_dag(dag, target, cache=True)

    values = timer.measure(_work)
    return values, {"workload": "bitweaving", "size": _COMPILE_SIZE,
                    "mapper": "sherlock"}


@benchmark("compile.ladder", group="compile",
           description="graceful-degradation compile of an oversized "
                       "synthetic DAG (recycle + partition fallback)")
def _compile_ladder(timer: Timer):
    # 48 ops on an 8x8 two-array target: the base mapper and the recycle
    # rung both run out of cells, so every repeat walks the full ladder
    # down to spill-and-partition
    dag = synthetic_dag(num_ops=48, num_inputs=8, seed=7,
                        name="bench-ladder")
    target = TargetSpec.square(8, RERAM, num_arrays=2)
    config = CompilerConfig(mapper="sherlock")

    def _work():
        compile_dag(dag, target, config, cache=False)

    values = timer.measure(_work)
    program = compile_dag(dag, target, config, cache=False)
    return values, {"ops": 48, "size": 8, "arrays": 2,
                    "degradation": program.degradation,
                    "stages": len(program.stages or [])}


#: array size for the multi-array probes (Sobel fits 4 arrays in one shot)
_MULTI_SIZE = 128
#: arrays of the co-scheduled compile the multi-array probes measure
_MULTI_ARRAYS = 4


def _multiarray_programs():
    """Sobel compiled single-schedule on 1 array and co-scheduled on 4."""
    dag = get_workload("sobel").build_dag()
    single = compile_dag(
        dag, TargetSpec.square(_MULTI_SIZE, RERAM, num_arrays=1),
        CompilerConfig(mapper="sherlock"), cache=False)
    multi = compile_dag(
        dag, TargetSpec.square(_MULTI_SIZE, RERAM, num_arrays=_MULTI_ARRAYS),
        CompilerConfig(mapper="sherlock", schedule="multi"), cache=False)
    return single, multi


@benchmark("compile.multiarray", group="compile",
           description="multi-array co-scheduled compile of the Sobel "
                       "kernel (cluster partition + assignment, 4 arrays)")
def _compile_multiarray(timer: Timer):
    dag = get_workload("sobel").build_dag()
    target = TargetSpec.square(_MULTI_SIZE, RERAM, num_arrays=_MULTI_ARRAYS)
    config = CompilerConfig(mapper="sherlock", schedule="multi")

    def _work():
        compile_dag(dag, target, config, cache=False)

    values = timer.measure(_work)
    program = compile_dag(dag, target, config, cache=False)
    overlap = program.overlap
    stats = program.mapping.stats
    return values, {"workload": "sobel", "size": _MULTI_SIZE,
                    "arrays": _MULTI_ARRAYS,
                    "instructions": len(program.instructions),
                    "makespan_cycles": overlap.makespan_cycles,
                    "speedup": round(overlap.speedup, 3),
                    "transfers": stats.cross_array_transfers,
                    "recomputed_ops": stats.recomputed_ops}


@benchmark("execute.multiarray", group="execute",
           description="array-set execution of the 4-array Sobel schedule "
                       "(modeled latency ratio vs 1 array in metadata)")
def _execute_multiarray(timer: Timer):
    single, multi = _multiarray_programs()
    workload = get_workload("sobel")
    inputs = workload.make_inputs(random.Random(0), _LANES)

    def _work():
        multi.execute(inputs, _LANES)

    values = timer.measure(_work)
    ratio = multi.overlap.makespan_cycles / max(
        1, single.overlap.serial_cycles)
    return values, {"workload": "sobel", "lanes": _LANES,
                    "arrays": _MULTI_ARRAYS,
                    "makespan_cycles": multi.overlap.makespan_cycles,
                    "serial_1array_cycles": single.overlap.serial_cycles,
                    "latency_ratio_vs_1array": round(ratio, 3)}


@benchmark("execute.bitweaving", group="execute",
           description="functional execution of the compiled bitweaving "
                       "program (default engine resolution)")
def _execute_bitweaving(timer: Timer):
    workload = get_workload("bitweaving")
    program = compile_dag(workload.build_dag(), _compile_target(),
                          cache=False)
    inputs = workload.make_inputs(random.Random(0), _LANES)
    program.execute(inputs, _LANES)  # warm the one-time lowering, untimed

    def _work():
        program.execute(inputs, _LANES)

    values = timer.measure(_work)
    return values, {"workload": "bitweaving", "lanes": _LANES,
                    "instructions": len(program.instructions)}


@benchmark("execute.vectorized", group="execute",
           description="bit-packed vectorized execution of the compiled "
                       "bitweaving program (speedup vs the interpreted "
                       "reference in metadata)")
def _execute_vectorized(timer: Timer):
    workload = get_workload("bitweaving")
    program = compile_dag(workload.build_dag(), _compile_target(),
                          cache=False)
    inputs = workload.make_inputs(random.Random(0), _LANES)
    program.execute(inputs, _LANES, engine="vectorized")  # warm lowering

    def _work():
        program.execute(inputs, _LANES, engine="vectorized")

    values = timer.measure(_work)
    t0 = time.perf_counter()
    program.execute(inputs, _LANES, engine="interpreted")
    interpreted_s = time.perf_counter() - t0
    vectorized_s = min(values)
    return values, {"workload": "bitweaving", "lanes": _LANES,
                    "instructions": len(program.instructions),
                    "interpreted_s": round(interpreted_s, 6),
                    "speedup_vs_interpreted": round(
                        interpreted_s / vectorized_s, 2)
                    if vectorized_s > 0 else None}


#: input sets per batch-probe repeat
_BATCH_SETS = 128


@benchmark("batch.execute_many", group="execute", unit="sets/s",
           better="higher",
           description="compile-once/execute-many batch throughput on the "
                       "bitweaving program (speedup vs an interpreted "
                       "per-set loop in metadata)")
def _batch_execute_many(timer: Timer):
    workload = get_workload("bitweaving")
    program = compile_dag(workload.build_dag(), _compile_target(),
                          cache=False)
    rng = random.Random(0)
    sets = [workload.make_inputs(rng, _LANES) for _ in range(_BATCH_SETS)]
    program.execute_many(sets[:2], _LANES)  # warm the lowering, untimed

    def _work():
        program.execute_many(sets, _LANES)

    values = timer.throughput(_work, _BATCH_SETS)
    sample = sets[:4]
    t0 = time.perf_counter()
    program.execute_many(sample, _LANES, engine="interpreted")
    interpreted_rate = len(sample) / (time.perf_counter() - t0)
    batch_rate = max(values)
    return values, {"workload": "bitweaving", "lanes": _LANES,
                    "sets": _BATCH_SETS,
                    "interpreted_sets_per_s": round(interpreted_rate, 1),
                    "speedup_vs_interpreted": round(
                        batch_rate / interpreted_rate, 2)
                    if interpreted_rate > 0 else None}


@benchmark("execute.verified", group="execute",
           description="bitweaving execution with verify-after-write on "
                       "(read-back every written cell, recover injected "
                       "write failures)")
def _execute_verified(timer: Timer):
    workload = get_workload("bitweaving")
    program = compile_dag(workload.build_dag(), _compile_target(),
                          cache=False)
    inputs = workload.make_inputs(random.Random(0), _LANES)
    machines = []

    def _work():
        machine = program.machine(_LANES, fault_rng=random.Random(7),
                                  verify_writes=True)
        from repro.sim.executor import extract_outputs, preload_sources

        preload_sources(machine, program.layout, program.dag, inputs)
        machine.run(program.instructions)
        machines.append(machine)
        return extract_outputs(machine, program.layout, program.dag)

    values = timer.measure(_work)
    last = machines[-1]
    return values, {"workload": "bitweaving", "lanes": _LANES,
                    "writes_verified": last.writes_verified,
                    "write_retries_used": last.write_retries_used,
                    "remaps": len(last.remaps)}


@benchmark("evaluate.reference", group="execute",
           description="reference DAG evaluation of the bitweaving kernel "
                       "(the per-trial shadow check)")
def _evaluate_reference(timer: Timer):
    workload = get_workload("bitweaving")
    dag = workload.build_dag()
    inputs = workload.make_inputs(random.Random(0), _LANES)

    def _work():
        evaluate(dag, inputs, _LANES)

    values = timer.measure(_work)
    return values, {"workload": "bitweaving", "lanes": _LANES}


@benchmark("campaign.serial", group="campaign", unit="trials/s",
           better="higher",
           description="single-process fault-injection campaign throughput")
def _campaign_serial(timer: Timer):
    program = campaign_program()

    def _work():
        run_campaign(program, trials=CAMPAIGN_TRIALS, seed=0, lanes=_LANES,
                     workers=1, engine="vectorized")

    values = timer.throughput(_work, CAMPAIGN_TRIALS)
    return values, {"trials": CAMPAIGN_TRIALS, "lanes": _LANES, "workers": 1,
                    "engine": "vectorized"}


@benchmark("campaign.parallel", group="campaign", unit="trials/s",
           better="higher",
           description="process-pool fault-injection campaign throughput "
                       "(sharded trials, same seed as campaign.serial)")
def _campaign_parallel(timer: Timer):
    program = campaign_program()
    workers = parallel_workers()

    def _work():
        run_campaign(program, trials=CAMPAIGN_TRIALS, seed=0, lanes=_LANES,
                     workers=workers, engine="vectorized")

    values = timer.throughput(_work, CAMPAIGN_TRIALS)
    return values, {"trials": CAMPAIGN_TRIALS, "lanes": _LANES,
                    "workers": workers, "cpus": os.cpu_count(),
                    "engine": "vectorized"}


#: requests per serve-probe batch (distinct DAGs, so a cold pass pays
#: one full compile per request)
_SERVE_REQUESTS = 3


def _serve_batch():
    """The fixed target + request batch both serve probes push through."""
    from repro.serve import ServeRequest

    target = TargetSpec.square(64, RERAM, num_arrays=2)
    rng = random.Random(0)
    requests = []
    for index in range(_SERVE_REQUESTS):
        dag = synthetic_dag(num_ops=16, num_inputs=6, seed=index + 1,
                            name=f"bench-serve{index}")
        inputs = {op.name: rng.getrandbits(_LANES) for op in dag.inputs()}
        requests.append(ServeRequest(dag=dag, inputs=inputs, lanes=_LANES,
                                     request_id=f"bench{index}"))
    return target, requests


@benchmark("serve.cold", group="serve",
           description="compile-and-serve a 3-request batch against an "
                       "empty artifact cache (compile + persist + execute)")
def _serve_cold(timer: Timer):
    from repro.serve import ArtifactCache, CompileService

    target, requests = _serve_batch()
    root = pathlib.Path(tempfile.mkdtemp(prefix="sherlock-serve-cold-"))
    repeat = [0]
    with CompileService(target, workers=2) as service:
        def _setup():
            # a fresh, empty cache directory per repeat: every request
            # misses and pays the full compile + atomic publish
            repeat[0] += 1
            service.cache = ArtifactCache(root / f"repeat{repeat[0]}")

        def _work():
            service.process(requests)

        values = timer.measure(_work, setup=_setup)
        stats = service.stats()
    shutil.rmtree(root, ignore_errors=True)
    return values, {"requests": _SERVE_REQUESTS, "lanes": _LANES,
                    "workers": 2, "cim_served": stats["cim_served"],
                    "errors": stats["errors"]}


@benchmark("serve.cached", group="serve",
           description="serve the same 3-request batch from a primed "
                       "artifact cache (deserialize + execute, no compile)")
def _serve_cached(timer: Timer):
    from repro.serve import ArtifactCache, CompileService

    target, requests = _serve_batch()
    root = pathlib.Path(tempfile.mkdtemp(prefix="sherlock-serve-cached-"))
    with CompileService(target, cache=ArtifactCache(root),
                        workers=2) as service:
        service.process(requests)  # prime the cache, untimed

        def _work():
            service.process(requests)

        values = timer.measure(_work)
        cache_stats = service.cache.stats()
        stats = service.stats()
    shutil.rmtree(root, ignore_errors=True)
    return values, {"requests": _SERVE_REQUESTS, "lanes": _LANES,
                    "workers": 2, "cache_hits": cache_stats["hits"],
                    "cache_writes": cache_stats["writes"],
                    "errors": stats["errors"]}


@benchmark("serve.degraded", group="serve",
           description="serve the 3-request batch with one fleet array "
                       "quarantined (health-driven CPU offload path)")
def _serve_degraded(timer: Timer):
    from repro.serve import ArrayHealth, CompileService

    target, requests = _serve_batch()
    with CompileService(target, workers=2) as service:
        service.process(requests)  # warm the compile cache, untimed
        # quarantine the array every request targets: the health registry
        # diverts the batch onto the circuit-breaker CPU-offload path
        service.health.force_state(requests[0].array_id,
                                   ArrayHealth.QUARANTINED)

        def _work():
            service.process(requests)

        values = timer.measure(_work)
        stats = service.stats()
    return values, {"requests": _SERVE_REQUESTS, "lanes": _LANES,
                    "workers": 2, "cpu_served": stats["cpu_served"],
                    "cim_served": stats["cim_served"],
                    "errors": stats["errors"]}


@benchmark("serve.voted", group="serve",
           description="serve the 3-request batch with redundancy=3 voted "
                       "execution across a 2-array fleet plus CPU referee")
def _serve_voted(timer: Timer):
    import dataclasses

    from repro.serve import CompileService

    target, requests = _serve_batch()
    voted = [dataclasses.replace(request, redundancy=3)
             for request in requests]
    fleet = {0: FaultMap(), 1: FaultMap()}
    with CompileService(target, workers=2,
                        machine_faults=fleet) as service:
        service.process(voted)  # warm the compile cache, untimed

        def _work():
            service.process(voted)

        values = timer.measure(_work)
        stats = service.stats()
    return values, {"requests": _SERVE_REQUESTS, "lanes": _LANES,
                    "workers": 2, "redundancy": 3,
                    "votes": stats["votes"],
                    "vote_disagreements": stats["vote_disagreements"],
                    "errors": stats["errors"]}


#: cells march-tested per serve.scrub repeat
_SCRUB_BUDGET = 4096


@benchmark("serve.scrub", group="serve", unit="cells/s", better="higher",
           description="patrol-scrub march-test throughput over a 2-array "
                       "fleet with planted latent faults")
def _serve_scrub(timer: Timer):
    from repro.devices import CellFault
    from repro.serve import CompileService

    target, _ = _serve_batch()
    fleet = {0: FaultMap(), 1: FaultMap()}
    rng = random.Random(7)
    for ground in fleet.values():
        for _ in range(8):
            ground.set_fault(rng.randrange(target.num_arrays),
                             rng.randrange(target.rows),
                             rng.randrange(target.cols), CellFault.STUCK0)
    with CompileService(target, machine_faults=fleet) as service:
        def _work():
            service.scrub(budget=_SCRUB_BUDGET)

        values = timer.throughput(_work, _SCRUB_BUDGET)
        scrub_stats = service.scrubber.stats()
    return values, {"budget": _SCRUB_BUDGET, "fleet": len(fleet),
                    "passes": scrub_stats["passes"],
                    "latent_faults_found":
                        scrub_stats["latent_faults_found"]}
