"""Timed benchmark probes, reports, and the regression gate.

The perf observability layer: ``@benchmark``-registered probes measure
the system's hot paths (compile cold/warm, execute, campaign throughput
serial vs parallel), ``sherlock bench`` runs them median-of-k and writes
a schema-versioned ``BENCH_sherlock.json``, and :func:`compare_reports`
turns two such files into a pass/fail regression verdict.

Importing this package registers the built-in probes
(:mod:`repro.bench.probes`).
"""

from repro.bench.registry import (
    BENCHMARKS,
    Probe,
    ProbeResult,
    Timer,
    benchmark,
    get_probe,
    run_benchmarks,
    select_probes,
)
from repro.bench import probes  # noqa: F401  (registers the built-in probes)
from repro.bench.report import (
    SCHEMA,
    BenchReport,
    Comparison,
    ProbeDelta,
    collect_report,
    compare_reports,
    git_revision,
    load_report,
    machine_info,
)

__all__ = [
    "BENCHMARKS",
    "SCHEMA",
    "BenchReport",
    "Comparison",
    "Probe",
    "ProbeDelta",
    "ProbeResult",
    "Timer",
    "benchmark",
    "collect_report",
    "compare_reports",
    "get_probe",
    "git_revision",
    "load_report",
    "machine_info",
    "probes",
    "run_benchmarks",
    "select_probes",
]
