"""Schema-versioned benchmark reports and regression comparison.

``sherlock bench`` serializes one :class:`BenchReport` per run into
``BENCH_sherlock.json``: the schema tag, when and where it was measured
(machine fingerprint, git revision), and one median-of-k
:class:`~repro.bench.registry.ProbeResult` per probe.  Two reports can be
compared probe-by-probe with a relative threshold — the ``--compare``
regression gate.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import time
from dataclasses import dataclass, field

from repro.bench.registry import ProbeResult, run_benchmarks
from repro.core.report import format_table
from repro.errors import BenchError

__all__ = [
    "SCHEMA",
    "BenchReport",
    "Comparison",
    "ProbeDelta",
    "collect_report",
    "compare_reports",
    "git_revision",
    "load_report",
    "machine_info",
]

#: schema tag written into (and required from) every report file
SCHEMA = "sherlock-bench/v1"


def machine_info() -> dict:
    """A fingerprint of the measuring machine, recorded in every report."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count(),
    }


def git_revision(cwd: str | pathlib.Path | None = None) -> str:
    """The current short git revision, or ``"unknown"`` outside a repo."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if result.returncode != 0:
        return "unknown"
    return result.stdout.strip() or "unknown"


@dataclass(frozen=True)
class BenchReport:
    """One benchmark session: environment stamp plus per-probe results."""

    schema: str
    #: seconds since the epoch when the session finished
    created: float
    git_rev: str
    machine: dict
    repeats: int
    probes: tuple[ProbeResult, ...]

    def probe(self, name: str) -> ProbeResult | None:
        """The named probe's result, or ``None`` if it was not run."""
        for result in self.probes:
            if result.name == name:
                return result
        return None

    def to_dict(self) -> dict:
        """The JSON document written to ``BENCH_sherlock.json``."""
        return {
            "schema": self.schema,
            "created": self.created,
            "git_rev": self.git_rev,
            "machine": dict(self.machine),
            "repeats": self.repeats,
            "probes": [result.to_dict() for result in self.probes],
        }

    def write(self, path: str | pathlib.Path) -> None:
        """Serialize the report to ``path`` as indented JSON."""
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        """Rebuild a report, validating the schema tag first."""
        schema = data.get("schema")
        if schema != SCHEMA:
            raise BenchError(
                f"unsupported bench report schema {schema!r} "
                f"(expected {SCHEMA!r})")
        try:
            return cls(
                schema=schema, created=data["created"],
                git_rev=data["git_rev"], machine=dict(data["machine"]),
                repeats=data["repeats"],
                probes=tuple(ProbeResult.from_dict(entry)
                             for entry in data["probes"]))
        except KeyError as missing:
            raise BenchError(
                f"bench report is missing required key {missing}") from None

    def render(self) -> str:
        """The per-probe medians as a monospace table."""
        rows = [[r.name, r.unit, r.median, min(r.values), max(r.values),
                 r.repeats] for r in self.probes]
        table = format_table(
            ["probe", "unit", "median", "min", "max", "repeats"], rows)
        return (f"{table}\n{len(self.probes)} probes, median of "
                f"{self.repeats} repeats, rev {self.git_rev}")


def load_report(path: str | pathlib.Path) -> BenchReport:
    """Load and schema-check a report written by :meth:`BenchReport.write`."""
    source = pathlib.Path(path)
    try:
        data = json.loads(source.read_text())
    except OSError as error:
        raise BenchError(f"cannot read bench report {source}: {error}") \
            from None
    except json.JSONDecodeError as error:
        raise BenchError(f"bench report {source} is not valid JSON: {error}") \
            from None
    return BenchReport.from_dict(data)


def collect_report(names: list[str] | None = None, repeats: int = 5,
                   progress=None) -> BenchReport:
    """Run the (selected) probes and stamp the result into a report."""
    results = run_benchmarks(names, repeats=repeats, progress=progress)
    return BenchReport(schema=SCHEMA, created=time.time(),
                       git_rev=git_revision(), machine=machine_info(),
                       repeats=repeats, probes=tuple(results))


# ----------------------------------------------------------------------
# comparison / regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProbeDelta:
    """One probe's baseline-vs-current movement."""

    name: str
    unit: str
    better: str
    baseline: float | None
    current: float | None
    #: "ok" | "improved" | "regressed" | "new" | "missing"
    status: str

    @property
    def ratio(self) -> float | None:
        """current / baseline, or ``None`` when either side is absent."""
        if self.baseline in (None, 0) or self.current is None:
            return None
        return self.current / self.baseline


@dataclass(frozen=True)
class Comparison:
    """A probe-by-probe report comparison under one relative threshold."""

    threshold: float
    deltas: tuple[ProbeDelta, ...] = field(default_factory=tuple)

    @property
    def regressions(self) -> list[ProbeDelta]:
        """Deltas that moved past the threshold in the wrong direction."""
        return [d for d in self.deltas if d.status == "regressed"]

    @property
    def ok(self) -> bool:
        """Whether the current report passes the regression gate."""
        return not self.regressions

    def render(self) -> str:
        """Comparison table plus a one-line verdict."""
        rows = []
        for delta in self.deltas:
            rows.append([
                delta.name, delta.unit, delta.better,
                "-" if delta.baseline is None else delta.baseline,
                "-" if delta.current is None else delta.current,
                "-" if delta.ratio is None else delta.ratio,
                delta.status,
            ])
        table = format_table(
            ["probe", "unit", "better", "baseline", "current", "ratio",
             "status"], rows)
        verdict = ("PASS" if self.ok else
                   f"FAIL: {len(self.regressions)} probe(s) regressed")
        return (f"{table}\nthreshold {self.threshold:.0%} -> {verdict}")


def _delta_status(better: str, baseline: float, current: float,
                  threshold: float) -> str:
    """Classify one probe movement against the relative threshold."""
    if baseline <= 0:
        return "ok"  # degenerate baseline: nothing meaningful to compare
    ratio = current / baseline
    if better == "lower":
        if ratio > 1.0 + threshold:
            return "regressed"
        if ratio < 1.0 - threshold:
            return "improved"
    else:
        if ratio < 1.0 - threshold:
            return "regressed"
        if ratio > 1.0 + threshold:
            return "improved"
    return "ok"


def compare_reports(baseline: BenchReport, current: BenchReport,
                    threshold: float = 0.25) -> Comparison:
    """Compare two reports probe-by-probe with a relative threshold.

    A probe regresses when its median moves against its declared
    direction by more than ``threshold`` (relative): wall times growing
    past ``baseline * (1 + threshold)``, throughputs shrinking below
    ``baseline * (1 - threshold)``.  Probes only present on one side are
    labeled ``new`` / ``missing`` and never fail the gate — renames and
    probe-set growth should not block CI — but they are always rendered
    so a silently vanished probe stays visible.
    """
    if threshold <= 0:
        raise BenchError(f"threshold must be positive, got {threshold}")
    deltas: list[ProbeDelta] = []
    current_names = {result.name for result in current.probes}
    for result in current.probes:
        base = baseline.probe(result.name)
        if base is None:
            deltas.append(ProbeDelta(result.name, result.unit, result.better,
                                     None, result.median, "new"))
            continue
        status = _delta_status(result.better, base.median, result.median,
                               threshold)
        deltas.append(ProbeDelta(result.name, result.unit, result.better,
                                 base.median, result.median, status))
    for result in baseline.probes:
        if result.name not in current_names:
            deltas.append(ProbeDelta(result.name, result.unit, result.better,
                                     result.median, None, "missing"))
    return Comparison(threshold=threshold, deltas=tuple(deltas))
