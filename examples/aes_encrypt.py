#!/usr/bin/env python
"""Bit-sliced AES-128 encryption in NVM, validated against FIPS-197.

Compiles the full 10-round bit-sliced AES data-flow graph (~10^5 gates),
maps it with both the naive and the Sherlock mapper, encrypts a batch of
blocks on the functional array simulator — including the FIPS-197 test
vector — and reports the mapping comparison the paper's Table 2 makes.

This is the heaviest example (the compile takes tens of seconds); pass
``--rounds 2`` for a quick reduced-round run.

Run:  python examples/aes_encrypt.py [--rounds N]
"""

import argparse
import random
import time

from repro.core import CompilerConfig, SherlockCompiler, TargetSpec
from repro.devices import RERAM
from repro.workloads import aes


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--rounds", type=int, default=10)
    args = parser.parse_args()

    t0 = time.time()
    dag = aes.aes_dag(args.rounds)
    print(f"AES-{args.rounds}-round DAG: {dag.num_ops:,} gates "
          f"({time.time() - t0:.1f}s to generate)")

    target = TargetSpec.square(1024, RERAM, num_arrays=16)
    programs = {}
    for mapper in ("sherlock", "naive"):
        t0 = time.time()
        config = CompilerConfig(mapper=mapper)
        programs[mapper] = SherlockCompiler(target, config).compile(dag)
        m = programs[mapper].metrics
        print(f"{mapper:9s}: {m.instruction_count:,} instructions, "
              f"{m.latency_us:,.1f} us, {m.energy_uj:,.1f} uJ "
              f"(compile {time.time() - t0:.1f}s)")
    speedup = (programs["naive"].metrics.latency_us
               / programs["sherlock"].metrics.latency_us)
    print(f"Sherlock speedup: {speedup:.2f}x "
          f"(the paper's AES row shows the largest gains)\n")

    # encrypt a batch: lane 0 = FIPS-197 vector, rest random
    rng = random.Random(1)
    blocks = [aes.FIPS_PLAINTEXT] + [
        bytes(rng.randrange(256) for _ in range(16)) for _ in range(3)]
    inputs = aes.block_inputs(blocks, aes.FIPS_KEY, args.rounds)
    t0 = time.time()
    outputs = programs["sherlock"].execute(inputs, len(blocks))
    ciphertexts = aes.decode_blocks(outputs, len(blocks))
    print(f"executed {programs['sherlock'].metrics.instruction_count:,} "
          f"instructions functionally in {time.time() - t0:.1f}s")

    for lane, (block, ct) in enumerate(zip(blocks, ciphertexts)):
        expected = aes.encrypt_reference(block, aes.FIPS_KEY, args.rounds)
        status = "ok" if ct == expected else "MISMATCH"
        print(f"  lane {lane}: {block.hex()} -> {ct.hex()} [{status}]")
        assert ct == expected
    if args.rounds == 10:
        assert ciphertexts[0] == aes.FIPS_CIPHERTEXT
        print("FIPS-197 Appendix C vector reproduced in-memory.")


if __name__ == "__main__":
    main()
