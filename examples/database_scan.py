#!/usr/bin/env python
"""Database column scan: BitWeaving BETWEEN predicate on a CIM array.

The paper's running example (Fig. 3): scan a database column for records
with ``C1 < value < C2`` using the BitWeaving-V layout, compiled from C
source through Sherlock's front-end.  The example scans a 100k-record
column on both mappers, verifies every verdict bit against a plain Python
scan, and compares the mappers' latency/energy.

Run:  python examples/database_scan.py
"""

import random

from repro.core import CompilerConfig, SherlockCompiler, TargetSpec
from repro.devices import RERAM
from repro.workloads import bitweaving

BITS = 8
LOW, HIGH = 57, 201
NUM_RECORDS = 100_000


def main():
    source = bitweaving.between_kernel_source(BITS)
    print("kernel (C subset, lowered by the Sherlock front-end):")
    print(source)

    dag = bitweaving.between_dag(BITS)
    print(f"DFG: {dag.num_ops} ops / {dag.num_operands} operands "
          f"(8 unrolled slice iterations)")

    target = TargetSpec.square(512, RERAM)
    rng = random.Random(42)
    column = bitweaving.random_column(rng, NUM_RECORDS, BITS)

    # the compiled program evaluates data_width records per run
    lanes_per_run = 64  # functional-simulation lanes per batch
    programs = {}
    for mapper in ("naive", "sherlock"):
        config = CompilerConfig(mapper=mapper)
        programs[mapper] = SherlockCompiler(target, config).compile(dag)

    # scan a few batches functionally and verify every verdict bit
    matches = 0
    for start in range(0, 4 * lanes_per_run, lanes_per_run):
        batch = column[start:start + lanes_per_run]
        inputs = bitweaving.scan_inputs(LOW, HIGH, batch, BITS)
        verdicts = programs["sherlock"].execute(inputs, len(batch))["return"]
        expected = bitweaving.between_reference(LOW, HIGH, batch)
        assert verdicts == expected, "scan verdicts diverge from reference"
        matches += bin(verdicts).count("1")
    print(f"functionally verified 4 batches; {matches} matches in "
          f"{4 * lanes_per_run} records")

    # whole-column cost estimate from the analytic model
    iterations = bitweaving.scan_iterations(NUM_RECORDS, target.data_width)
    print(f"\nscanning {NUM_RECORDS:,} records takes {iterations} program runs "
          f"({target.data_width} records per run):")
    for mapper, program in programs.items():
        scan = program.metrics.scaled(iterations)
        print(f"  {mapper:9s}: {scan.latency_us:10.2f} us, "
              f"{scan.energy_uj:8.2f} uJ, P_app {scan.p_app:.2e}")
    speedup = (programs["naive"].metrics.latency_us
               / programs["sherlock"].metrics.latency_us)
    print(f"\nSherlock speedup over the naive mapping: {speedup:.2f}x")


if __name__ == "__main__":
    main()
