#!/usr/bin/env python
"""Quickstart: compile a tiny bulk-bitwise kernel and inspect everything.

Walks the full Sherlock pipeline on a majority-vote kernel:

1. build a data-flow graph (builder DSL — or see ``database_scan.py`` for
   the C front-end),
2. pick a CIM target (ReRAM, 256x256 arrays, Table 1 style),
3. compile with the optimizing mapper,
4. functionally execute the generated instructions and verify them against
   the DAG's reference semantics,
5. print the generated code and the latency/energy/reliability report.

Run:  python examples/quickstart.py
"""

import random

from repro.core import CompilerConfig, SherlockCompiler, TargetSpec
from repro.devices import RERAM
from repro.dfg import DFGBuilder


def build_majority_dag():
    """maj(x, y, z) plus a parity bit — a toy bulk-bitwise kernel."""
    b = DFGBuilder("quickstart")
    x, y, z = b.inputs("x", "y", "z")
    b.output("majority", (x & y) | (x & z) | (y & z))
    b.output("parity", x ^ y ^ z)
    return b.build()


def main():
    dag = build_majority_dag()
    print(f"DAG: {dag.num_ops} ops, {dag.num_operands} operands, "
          f"outputs {sorted(dag.outputs)}")

    target = TargetSpec.square(256, RERAM)
    print(f"target: {target.describe()}")

    program = SherlockCompiler(target, CompilerConfig(mapper="sherlock")).compile(dag)

    print("\ngenerated instructions (Fig. 4 format):")
    print(program.text())

    rng = random.Random(0)
    lanes = 64  # 64 independent data elements at once
    inputs = {name: rng.getrandbits(lanes) for name in ("x", "y", "z")}
    program.verify(inputs, lanes)
    outputs = program.execute(inputs, lanes)
    print(f"\nfunctional check passed; majority lanes = {outputs['majority']:#018x}")

    m = program.metrics
    print("\nreport:")
    print(f"  instructions : {m.instruction_count}")
    print(f"  latency      : {m.latency_us:.4f} us ({m.latency_cycles} cycles)")
    print(f"  energy       : {m.energy_nj:.2f} nJ over {target.data_width} lanes")
    print(f"  P_app        : {m.p_app:.3e}")
    print(f"  EDP          : {m.edp:.3e} J*s")


if __name__ == "__main__":
    main()
