#!/usr/bin/env python
"""Sobel edge detection of an image on the CIM array, end to end.

Generates a synthetic grayscale test image, compiles the bit-sliced Sobel
tile kernel, runs every tile of the image through the functional array
simulator, checks the magnitudes against the scalar reference, and prints
an ASCII rendering of the detected edges.

Run:  python examples/sobel_edge.py
"""

from repro.core import CompilerConfig, SherlockCompiler, TargetSpec
from repro.devices import STT_MRAM
from repro.workloads import sobel

TILE = 4
SIZE = 22  # small image so the functional simulation stays snappy


def make_image(size):
    """A dark field with a bright rectangle and a diagonal stripe."""
    image = [[16] * size for _ in range(size)]
    for r in range(5, 15):
        for c in range(6, 16):
            image[r][c] = 220
    for i in range(size):
        if 0 <= i - 2 < size:
            image[i][i - 2] = 180
    return image


def main():
    dag = sobel.sobel_tile_dag(TILE)
    target = TargetSpec.square(512, STT_MRAM)
    program = SherlockCompiler(target, CompilerConfig(mapper="sherlock")).compile(dag)
    m = program.metrics
    print(f"compiled Sobel tile: {m.instruction_count} instructions, "
          f"{m.latency_us:.2f} us, {m.energy_uj:.2f} uJ per run "
          f"({target.data_width} tiles in parallel)")

    image = make_image(SIZE)
    out_size = SIZE - 2
    magnitudes = [[0] * out_size for _ in range(out_size)]

    # tile the output plane; one lane per tile here (the data width would
    # process thousands of tiles per run on the modeled hardware)
    tiles = [(r, c) for r in range(0, out_size, TILE)
             for c in range(0, out_size, TILE)]
    for r0, c0 in tiles:
        window = [[image[min(r0 + dr, SIZE - 1)][min(c0 + dc, SIZE - 1)]
                   for dc in range(TILE + 2)] for dr in range(TILE + 2)]
        inputs = sobel.tile_inputs([window], TILE)
        outputs = program.execute(inputs, 1)
        grid = sobel.decode_tile_magnitudes(outputs, 1, TILE)[0]
        for dr in range(TILE):
            for dc in range(TILE):
                rr, cc = r0 + dr, c0 + dc
                if rr < out_size and cc < out_size:
                    nb = [[window[dr + i][dc + j] for j in range(3)]
                          for i in range(3)]
                    assert grid[dr][dc] == sobel.sobel_reference(nb)
                    magnitudes[rr][cc] = grid[dr][dc]
    print(f"verified {len(tiles)} tiles against the scalar reference\n")

    shades = " .:-=+*#%@"
    peak = max(max(row) for row in magnitudes) or 1
    print("edge magnitude map:")
    for row in magnitudes:
        print("".join(shades[min(len(shades) - 1,
                                 value * (len(shades) - 1) // peak)]
                      for value in row))


if __name__ == "__main__":
    main()
