#!/usr/bin/env python
"""Batched graph reachability: BFS levels computed in NVM.

Extension beyond the paper's three workloads (its introduction motivates
graph processing): one compiled frontier-expansion program traverses many
independent graphs at once — one graph per lane.  The host iterates the
step until every frontier drains and checks the levels against a reference
BFS.

Run:  python examples/graph_reachability.py
"""

import random

from repro.core import CompilerConfig, SherlockCompiler, TargetSpec
from repro.devices import RERAM
from repro.workloads import bfs

NUM_VERTICES = 12
LANES = 8  # independent graphs traversed simultaneously


def main():
    rng = random.Random(11)
    dag = bfs.bfs_step_dag(NUM_VERTICES)
    target = TargetSpec.square(256, RERAM)
    program = SherlockCompiler(target, CompilerConfig()).compile(dag)
    m = program.metrics
    print(f"BFS step program: {dag.num_ops} ops -> "
          f"{m.instruction_count} instructions, {m.latency_us:.2f} us, "
          f"{m.energy_uj:.3f} uJ per level ({target.data_width} graphs "
          "in parallel on the modeled hardware)")

    graphs = [[[1 if rng.random() < 0.18 and i != j else 0
                for j in range(NUM_VERTICES)] for i in range(NUM_VERTICES)]
              for _ in range(LANES)]
    sources = [rng.randrange(NUM_VERTICES) for _ in range(LANES)]
    frontiers = [{s} for s in sources]
    visited = [{s} for s in sources]
    levels = [{s: 0} for s in sources]

    step = 0
    while any(frontiers) and step < NUM_VERTICES:
        step += 1
        outputs = program.execute(
            bfs.step_inputs(graphs, frontiers, visited), LANES)
        for lane in range(LANES):
            frontiers[lane], visited[lane] = bfs.decode_step(
                outputs, lane, NUM_VERTICES)
            for vertex in frontiers[lane]:
                levels[lane][vertex] = step
    print(f"traversal converged after {step} in-memory steps")

    for lane in range(LANES):
        expected = bfs.bfs_reference(graphs[lane], sources[lane])
        assert levels[lane] == expected, f"lane {lane} diverges"
        reachable = len(expected)
        print(f"  graph {lane}: source {sources[lane]:2d}, "
              f"{reachable:2d}/{NUM_VERTICES} vertices reachable, "
              f"eccentricity {max(expected.values())}")
    print("all lanes match the reference BFS")


if __name__ == "__main__":
    main()
